// Unit tests for the observability layer: instrument exactness under
// contention, histogram boundary semantics, deterministic exposition,
// callback lifetime (FreezeCallbacks), trace-JSON well-formedness, and the
// phase-timer → span unification hook.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/profiler.h"
#include "obs/instruments.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace fm::obs {
namespace {

// ---- Instruments ----

TEST(InstrumentsTest, CounterExactUnderContention) {
  Counter counter;
  ShardedCounter sharded(4);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Increment();
        sharded.Add(t % 4);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  EXPECT_EQ(sharded.value(), kThreads * kPerThread);
}

TEST(InstrumentsTest, HistogramBoundariesAreInclusiveUpperEdges) {
  // Bucket i counts boundaries[i-1] < v <= boundaries[i]; the last bucket
  // is overflow. Values exactly on a boundary must land in that boundary's
  // bucket, never the next one.
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);    // bucket 0
  h.Observe(1.0);    // bucket 0 (inclusive upper edge)
  h.Observe(1.0001); // bucket 1
  h.Observe(10.0);   // bucket 1
  h.Observe(100.0);  // bucket 2
  h.Observe(100.5);  // overflow
  ASSERT_EQ(h.num_buckets(), 4u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.0001 + 10.0 + 100.0 + 100.5);
}

TEST(InstrumentsTest, HistogramExactUnderContention) {
  Histogram h(LatencyBoundaries());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) h.Observe(1e-4);
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  std::uint64_t bucket_total = 0;
  for (std::size_t i = 0; i < h.num_buckets(); ++i) {
    bucket_total += h.bucket_count(i);
  }
  EXPECT_EQ(bucket_total, h.count());
}

// ---- Registry ----

TEST(MetricsRegistryTest, SnapshotWalksRegistrationOrder) {
  MetricsRegistry registry;
  registry.RegisterCounter("z.last", "registered first");
  registry.RegisterGauge("a.first", "registered second");
  registry.RegisterHistogram("m.middle", "registered third", {1.0, 2.0});
  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.instruments.size(), 3u);
  // Registration order, not lexicographic — two runs registering the same
  // instruments produce byte-identical exposition headers.
  EXPECT_EQ(snap.instruments[0].name, "z.last");
  EXPECT_EQ(snap.instruments[1].name, "a.first");
  EXPECT_EQ(snap.instruments[2].name, "m.middle");
}

TEST(MetricsRegistryTest, ExpositionIsDeterministic) {
  auto build = [](std::uint64_t count) {
    MetricsRegistry registry;
    registry.RegisterCounter("orders.placed", "orders").Add(count);
    registry.RegisterGauge("queue.depth", "depth").Set(3.5);
    // Binary-exact boundaries so the %.17g exposition renders them short.
    registry.RegisterHistogram("latency_seconds", "lat", {0.25, 1.0})
        .Observe(0.05);
    return registry.Snapshot();
  };
  const MetricsSnapshot a = build(7);
  const MetricsSnapshot b = build(7);
  EXPECT_EQ(a.ToJson(), b.ToJson());
  EXPECT_EQ(a.ToPrometheusText(), b.ToPrometheusText());
  // Same structure, different value: only the value may differ.
  const MetricsSnapshot c = build(8);
  EXPECT_NE(a.ToJson(), c.ToJson());
  EXPECT_NE(a.ToJson().find("\"orders.placed\": 7"), std::string::npos);
  EXPECT_NE(c.ToJson().find("\"orders.placed\": 8"), std::string::npos);
  // Prometheus exposition swaps dots for underscores and renders
  // cumulative buckets.
  const std::string prom = a.ToPrometheusText();
  EXPECT_NE(prom.find("# TYPE orders_placed counter"), std::string::npos);
  EXPECT_NE(prom.find("latency_seconds_bucket{le=\"0.25\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("latency_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
}

TEST(MetricsRegistryTest, ShardedCounterAggregatesOnSnapshot) {
  MetricsRegistry registry;
  ShardedCounter& c = registry.RegisterShardedCounter("s.total", "sum", 4);
  for (int shard = 0; shard < 4; ++shard) c.Add(shard, 10);
  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.instruments.size(), 1u);
  EXPECT_EQ(snap.instruments[0].counter, 40u);
}

TEST(MetricsRegistryTest, CallbacksSampleAtSnapshotTime) {
  MetricsRegistry registry;
  std::uint64_t source = 0;
  registry.RegisterCallbackCounter("cb.count", "live",
                                   [&source] { return source; });
  source = 41;
  EXPECT_EQ(registry.Snapshot().instruments[0].counter, 41u);
  source = 42;
  EXPECT_EQ(registry.Snapshot().instruments[0].counter, 42u);
}

TEST(MetricsRegistryTest, FreezeCallbacksKeepsFinalValueAfterOwnerDies) {
  MetricsRegistry registry;
  struct Component {
    MetricsRegistry* registry;
    std::uint64_t count = 0;
    double depth = 0.0;
    explicit Component(MetricsRegistry* r) : registry(r) {
      registry->RegisterCallbackCounter(
          "comp.count", "count", [this] { return count; }, this);
      registry->RegisterCallbackGauge(
          "comp.depth", "depth", [this] { return depth; }, this);
    }
    ~Component() { registry->FreezeCallbacks(this); }
  };
  {
    Component comp(&registry);
    comp.count = 17;
    comp.depth = 2.5;
  }
  // The owner is gone; the registry must expose the frozen final values
  // instead of calling dangling callbacks.
  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.instruments.size(), 2u);
  EXPECT_EQ(snap.instruments[0].counter, 17u);
  EXPECT_DOUBLE_EQ(snap.instruments[1].gauge, 2.5);
}

// ---- Tracer ----

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(TracerTest, WriteJsonIsWellFormedChromeTraceFormat) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable();
  {
    ScopedSpan outer("outer", "test");
    ScopedSpan inner("inner", "test");
  }
  EmitOrderLifecycle('b', "order.placed", 7);
  EmitOrderLifecycle('n', "order.drained", 7);
  EmitOrderLifecycle('e', "order.decided", 7);
  std::thread other([] { ScopedSpan span("worker", "test"); });
  other.join();
  tracer.Disable();

  const std::vector<TraceEvent> events = tracer.SortedEvents();
  ASSERT_EQ(events.size(), 6u);
  // Sorted by timestamp; spans close inner-first but sort by start.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts_us, events[i - 1].ts_us);
  }
  // The worker thread registered its own tid.
  bool saw_second_tid = false;
  for (const TraceEvent& e : events) {
    if (e.name == "worker") saw_second_tid = e.tid != events[0].tid;
  }
  EXPECT_TRUE(saw_second_tid);

  const std::string path =
      (std::filesystem::temp_directory_path() / "fm_obs_test_trace.json")
          .string();
  ASSERT_TRUE(tracer.WriteJson(path));
  const std::string json = ReadFile(path);
  std::remove(path.c_str());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"e\""), std::string::npos);
  EXPECT_NE(json.find("\"id\": 7"), std::string::npos);
  // Braces and brackets balance — the document parses as JSON.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable();
  tracer.Disable();
  { ScopedSpan span("ignored", "test"); }
  EmitOrderLifecycle('b', "ignored", 1);
  EXPECT_TRUE(tracer.SortedEvents().empty());
}

TEST(TracerTest, RingOverwritesOldestAndCountsDropped) {
  Tracer& tracer = Tracer::Global();
  // Enable clamps the per-thread ring to at least 16 slots.
  tracer.Enable(/*events_per_thread=*/16);
  for (int i = 0; i < 26; ++i) {
    ScopedSpan span("spin", "test");
  }
  tracer.Disable();
  EXPECT_EQ(tracer.SortedEvents().size(), 16u);
  EXPECT_EQ(tracer.dropped(), 10u);
}

TEST(TracerTest, PhaseTimersEmitSpansWhileEnabled) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable();
  PhaseProfile profile;
  { ScopedPhaseTimer timer(&profile, "unit.phase"); }
  // Null-profile timers are also spans — the hook is the only consumer.
  { ScopedPhaseTimer timer(nullptr, "unit.null_phase"); }
  tracer.Disable();
  const std::vector<TraceEvent> events = tracer.SortedEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "unit.phase");
  EXPECT_EQ(events[0].phase, 'X');
  EXPECT_STREQ(events[0].category, "phase");
  EXPECT_EQ(events[1].name, "unit.null_phase");
  // The profile still accumulated wall clock — the span rides along, it
  // does not replace the timer.
  EXPECT_EQ(profile.phases().count("unit.phase"), 1u);
  // Once disabled, the hook is uninstalled and timers stop emitting.
  { ScopedPhaseTimer timer(&profile, "unit.after"); }
  EXPECT_EQ(tracer.SortedEvents().size(), 2u);
}

}  // namespace
}  // namespace fm::obs
