#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/greedy_policy.h"
#include "core/matching_policy.h"
#include "core/reyes_policy.h"
#include "graph/distance_oracle.h"
#include "routing/route_planner.h"
#include "tests/test_util.h"

namespace fm {
namespace {

Order MakeOrder(OrderId id, NodeId r, NodeId c, Seconds placed = 0.0,
                Seconds prep = 0.0, int items = 1) {
  Order o;
  o.id = id;
  o.restaurant = r;
  o.customer = c;
  o.placed_at = placed;
  o.prep_time = prep;
  o.items = items;
  return o;
}

VehicleSnapshot MakeVehicle(VehicleId id, NodeId at) {
  VehicleSnapshot v;
  v.id = id;
  v.location = at;
  v.next_destination = at;
  return v;
}

// No order may be assigned twice, no vehicle beyond capacity.
void CheckDecisionSane(const AssignmentDecision& d, const Config& config) {
  std::set<OrderId> orders_seen;
  std::map<VehicleId, int> orders_per_vehicle;
  for (const auto& item : d.assignments) {
    EXPECT_NE(item.vehicle, kInvalidVehicle);
    for (const Order& o : item.orders) {
      EXPECT_TRUE(orders_seen.insert(o.id).second)
          << "order " << o.id << " assigned twice";
      orders_per_vehicle[item.vehicle] += 1;
    }
  }
  for (const auto& [v, n] : orders_per_vehicle) {
    EXPECT_LE(n, config.max_orders_per_vehicle);
  }
}

class PoliciesTest : public ::testing::Test {
 protected:
  PoliciesTest()
      : net_(testing::LineNetwork(30, 60.0)),
        oracle_(&net_, OracleBackend::kDijkstra) {}

  RoadNetwork net_;
  DistanceOracle oracle_;
  Config config_;
};

// ---------- Greedy ----------

TEST_F(PoliciesTest, GreedyAssignsNearestVehicle) {
  GreedyPolicy greedy(&oracle_, config_);
  std::vector<Order> orders = {MakeOrder(0, 10, 12)};
  std::vector<VehicleSnapshot> vehicles = {MakeVehicle(0, 0),
                                           MakeVehicle(1, 9)};
  auto d = greedy.Assign(orders, vehicles, 0.0);
  CheckDecisionSane(d, config_);
  ASSERT_EQ(d.assignments.size(), 1u);
  EXPECT_EQ(d.assignments[0].vehicle, 1u);
}

TEST_F(PoliciesTest, GreedyAssignsAllWhenCapacityAllows) {
  GreedyPolicy greedy(&oracle_, config_);
  std::vector<Order> orders = {MakeOrder(0, 5, 6), MakeOrder(1, 7, 8),
                               MakeOrder(2, 9, 10)};
  std::vector<VehicleSnapshot> vehicles = {MakeVehicle(0, 5)};
  auto d = greedy.Assign(orders, vehicles, 0.0);
  CheckDecisionSane(d, config_);
  EXPECT_EQ(d.assignments.size(), 3u);  // MAXO=3 on one vehicle
}

TEST_F(PoliciesTest, GreedyRespectsMaxOrders) {
  Config config = config_;
  config.max_orders_per_vehicle = 1;
  GreedyPolicy greedy(&oracle_, config);
  std::vector<Order> orders = {MakeOrder(0, 5, 6), MakeOrder(1, 7, 8)};
  std::vector<VehicleSnapshot> vehicles = {MakeVehicle(0, 5)};
  auto d = greedy.Assign(orders, vehicles, 0.0);
  CheckDecisionSane(d, config);
  EXPECT_EQ(d.assignments.size(), 1u);
}

TEST_F(PoliciesTest, GreedyEmptyInputs) {
  GreedyPolicy greedy(&oracle_, config_);
  EXPECT_TRUE(greedy.Assign({}, {MakeVehicle(0, 0)}, 0.0).assignments.empty());
  EXPECT_TRUE(greedy.Assign({MakeOrder(0, 1, 2)}, {}, 0.0).assignments.empty());
  EXPECT_FALSE(greedy.wants_reshuffle());
}

// ---------- MatchingPolicy ----------

TEST_F(PoliciesTest, VanillaKMDoesOneToOneAssignment) {
  MatchingPolicy km(&oracle_, config_, MatchingPolicyOptions::VanillaKM());
  EXPECT_EQ(km.name(), "KM");
  EXPECT_FALSE(km.wants_reshuffle());
  std::vector<Order> orders = {MakeOrder(0, 5, 6), MakeOrder(1, 7, 8)};
  std::vector<VehicleSnapshot> vehicles = {MakeVehicle(0, 5),
                                           MakeVehicle(1, 7)};
  auto d = km.Assign(orders, vehicles, 0.0);
  CheckDecisionSane(d, config_);
  ASSERT_EQ(d.assignments.size(), 2u);
  // No batching: one order per item.
  for (const auto& item : d.assignments) {
    EXPECT_EQ(item.orders.size(), 1u);
  }
}

TEST_F(PoliciesTest, MatchingBeatsGreedyOnAdversarialInstance) {
  // The §III limitation: greedy's locally optimal first pick forces a bad
  // global outcome. With prep = 0 and MAXO = 1, mCost(o, v) is the first
  // mile. Restaurants at nodes 9 and 12; vehicles at 11 and 14:
  //   mCost(o0, v0)=120  mCost(o0, v1)=300
  //   mCost(o1, v0)= 60  mCost(o1, v1)=120
  // Greedy grabs (o1, v0)=60 and must pay (o0, v1)=300 → 360.
  // Matching: o0→v0 (120) + o1→v1 (120) → 240.
  Config config = config_;
  config.max_orders_per_vehicle = 1;
  std::vector<Order> orders = {MakeOrder(0, 9, 8), MakeOrder(1, 12, 13)};
  std::vector<VehicleSnapshot> vehicles = {MakeVehicle(0, 11),
                                           MakeVehicle(1, 14)};

  GreedyPolicy greedy(&oracle_, config);
  MatchingPolicy km(&oracle_, config, MatchingPolicyOptions::VanillaKM());

  auto total_cost = [&](const AssignmentDecision& d) {
    Seconds total = 0.0;
    std::map<VehicleId, VehicleSnapshot> state;
    for (const auto& v : vehicles) state[v.id] = v;
    for (const auto& item : d.assignments) {
      total += MarginalCost(oracle_, state[item.vehicle], 0.0, item.orders);
      for (const Order& o : item.orders) {
        state[item.vehicle].unpicked.push_back(o);
      }
    }
    return total;
  };

  const Seconds g = total_cost(greedy.Assign(orders, vehicles, 0.0));
  const Seconds m = total_cost(km.Assign(orders, vehicles, 0.0));
  EXPECT_DOUBLE_EQ(g, 360.0);
  EXPECT_DOUBLE_EQ(m, 240.0);
}

TEST_F(PoliciesTest, FoodMatchBatchesCoLocatedOrders) {
  MatchingPolicy fm_policy(&oracle_, config_,
                           MatchingPolicyOptions::FoodMatch());
  EXPECT_EQ(fm_policy.name(), "FoodMatch");
  EXPECT_TRUE(fm_policy.wants_reshuffle());
  std::vector<Order> orders = {MakeOrder(0, 5, 10), MakeOrder(1, 5, 11)};
  std::vector<VehicleSnapshot> vehicles = {MakeVehicle(0, 4)};
  auto d = fm_policy.Assign(orders, vehicles, 0.0);
  CheckDecisionSane(d, config_);
  ASSERT_EQ(d.assignments.size(), 1u);
  EXPECT_EQ(d.assignments[0].orders.size(), 2u);  // batched
}

TEST_F(PoliciesTest, MoreOrdersThanVehiclesLeavesSomeUnassigned) {
  MatchingPolicy km(&oracle_, config_, MatchingPolicyOptions::VanillaKM());
  std::vector<Order> orders = {MakeOrder(0, 5, 6), MakeOrder(1, 7, 8),
                               MakeOrder(2, 9, 10)};
  std::vector<VehicleSnapshot> vehicles = {MakeVehicle(0, 5)};
  auto d = km.Assign(orders, vehicles, 0.0);
  CheckDecisionSane(d, config_);
  // KM matches min(|U1|, |U2|) = 1 pair (no batching).
  EXPECT_EQ(d.assignments.size(), 1u);
}

TEST_F(PoliciesTest, AblationNames) {
  MatchingPolicy br(&oracle_, config_,
                    MatchingPolicyOptions::BatchingAndReshuffle());
  EXPECT_EQ(br.name(), "KM+B&R");
  MatchingPolicy brb(&oracle_, config_,
                     MatchingPolicyOptions::BatchingReshuffleBestFirst());
  EXPECT_EQ(brb.name(), "KM+B&R+BFS");
}

TEST_F(PoliciesTest, OmegaEdgesAreNeverAssigned) {
  // Vehicle too far (over the 45-minute promise): no assignment results.
  Config config = config_;
  config.max_first_mile = 120.0;
  MatchingPolicy km(&oracle_, config, MatchingPolicyOptions::VanillaKM());
  std::vector<Order> orders = {MakeOrder(0, 20, 22)};
  std::vector<VehicleSnapshot> vehicles = {MakeVehicle(0, 0)};
  auto d = km.Assign(orders, vehicles, 0.0);
  EXPECT_TRUE(d.assignments.empty());
}

// ---------- Reyes ----------

TEST_F(PoliciesTest, ReyesBatchesOnlySameRestaurant) {
  ReyesPolicy reyes(&net_, config_);
  EXPECT_EQ(reyes.name(), "Reyes");
  EXPECT_FALSE(reyes.wants_reshuffle());
  std::vector<Order> orders = {
      MakeOrder(0, 5, 10), MakeOrder(1, 5, 11),  // same restaurant
      MakeOrder(2, 6, 12),                        // different restaurant
  };
  std::vector<VehicleSnapshot> vehicles = {MakeVehicle(0, 4),
                                           MakeVehicle(1, 6)};
  auto d = reyes.Assign(orders, vehicles, 0.0);
  CheckDecisionSane(d, config_);
  // Orders 0 and 1 must travel together or not at all; order 2 alone.
  for (const auto& item : d.assignments) {
    std::set<NodeId> restaurants;
    for (const Order& o : item.orders) restaurants.insert(o.restaurant);
    EXPECT_EQ(restaurants.size(), 1u);
  }
}

TEST_F(PoliciesTest, ReyesRespectsCapacityWhenChunking) {
  Config config = config_;
  config.max_orders_per_vehicle = 2;
  ReyesPolicy reyes(&net_, config);
  std::vector<Order> orders;
  for (int i = 0; i < 5; ++i) orders.push_back(MakeOrder(i, 5, 10 + i));
  std::vector<VehicleSnapshot> vehicles = {MakeVehicle(0, 4),
                                           MakeVehicle(1, 5),
                                           MakeVehicle(2, 6)};
  auto d = reyes.Assign(orders, vehicles, 0.0);
  CheckDecisionSane(d, config);
  for (const auto& item : d.assignments) {
    EXPECT_LE(item.orders.size(), 2u);
  }
}

}  // namespace
}  // namespace fm
