// PolicyRegistry: built-in names, option plumbing, registrar extension, and
// the failure mode for unknown names (must list what IS registered).
#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "core/matching_policy.h"
#include "core/policy_registry.h"
#include "graph/distance_oracle.h"
#include "tests/test_util.h"

namespace fm {
namespace {

class PolicyRegistryTest : public ::testing::Test {
 protected:
  PolicyRegistryTest()
      : net_(testing::LineNetwork(10, 60.0, 500.0)),
        oracle_(&net_, OracleBackend::kDijkstra) {}

  RoadNetwork net_;
  DistanceOracle oracle_;
  Config config_;
};

TEST_F(PolicyRegistryTest, BuiltinsAreRegistered) {
  PolicyRegistry& registry = PolicyRegistry::Global();
  for (const char* name :
       {"foodmatch", "km", "br", "br-bfs", "greedy", "reyes"}) {
    EXPECT_TRUE(registry.Contains(name)) << name;
  }
  EXPECT_FALSE(registry.Contains("no-such-policy"));
}

TEST_F(PolicyRegistryTest, NamesAreSortedAndListed) {
  const std::vector<std::string> names = PolicyRegistry::Global().Names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  const std::string listed = PolicyRegistry::Global().NamesString();
  for (const std::string& name : names) {
    EXPECT_NE(listed.find(name), std::string::npos) << name;
  }
}

TEST_F(PolicyRegistryTest, CreateBuildsEveryBuiltin) {
  struct Expectation {
    const char* key;
    const char* display_name;
    bool reshuffle;
  };
  // Display names and reshuffle behavior must match direct construction.
  for (const Expectation& e : {Expectation{"foodmatch", "FoodMatch", true},
                               Expectation{"km", "KM", false},
                               Expectation{"br", "KM+B&R", true},
                               Expectation{"br-bfs", "KM+B&R+BFS", true},
                               Expectation{"greedy", "Greedy", false},
                               Expectation{"reyes", "Reyes", false}}) {
    std::unique_ptr<AssignmentPolicy> policy =
        PolicyRegistry::Global().Create(e.key, &oracle_, config_);
    ASSERT_NE(policy, nullptr) << e.key;
    EXPECT_EQ(policy->name(), e.display_name) << e.key;
    EXPECT_EQ(policy->wants_reshuffle(), e.reshuffle) << e.key;
  }
}

TEST_F(PolicyRegistryTest, FixedKOptionReachesSparsifiedPolicies) {
  PolicyOptions options;
  options.fixed_k = 7;
  auto foodmatch =
      PolicyRegistry::Global().Create("foodmatch", &oracle_, config_, options);
  auto* mp = dynamic_cast<MatchingPolicy*>(foodmatch.get());
  ASSERT_NE(mp, nullptr);
  EXPECT_EQ(mp->options().fixed_k, 7);

  // The dense baselines ignore the override (it only applies to Alg. 2).
  auto km = PolicyRegistry::Global().Create("km", &oracle_, config_, options);
  auto* kmp = dynamic_cast<MatchingPolicy*>(km.get());
  ASSERT_NE(kmp, nullptr);
  EXPECT_EQ(kmp->options().fixed_k, 0);
}

TEST_F(PolicyRegistryTest, TryCreateReturnsNullForUnknownName) {
  EXPECT_EQ(PolicyRegistry::Global().TryCreate("no-such-policy", &oracle_,
                                               config_),
            nullptr);
}

TEST_F(PolicyRegistryTest, RegistrarAddsCustomPolicy) {
  static PolicyRegistrar registrar(
      "test-custom", [](const DistanceOracle* oracle, const Config& config,
                        const PolicyOptions&) {
        return std::make_unique<MatchingPolicy>(
            oracle, config, MatchingPolicyOptions::VanillaKM());
      });
  EXPECT_TRUE(PolicyRegistry::Global().Contains("test-custom"));
  auto policy =
      PolicyRegistry::Global().Create("test-custom", &oracle_, config_);
  EXPECT_EQ(policy->name(), "KM");
}

using PolicyRegistryDeathTest = PolicyRegistryTest;

TEST_F(PolicyRegistryDeathTest, UnknownNameDiesListingRegisteredNames) {
  // The message must name the offender AND list every registered policy, so
  // a typo on the command line is self-explaining.
  EXPECT_DEATH(
      PolicyRegistry::Global().Create("no-such-policy", &oracle_, config_),
      "unknown policy 'no-such-policy'.*"
      "br.*br-bfs.*foodmatch.*greedy.*km.*reyes");
}

TEST_F(PolicyRegistryDeathTest, DuplicateRegistrationDies) {
  EXPECT_DEATH(PolicyRegistry::Global().Register(
                   "foodmatch",
                   [](const DistanceOracle*, const Config&,
                      const PolicyOptions&) {
                     return std::unique_ptr<AssignmentPolicy>();
                   }),
               "duplicate policy registration: 'foodmatch'");
}

}  // namespace
}  // namespace fm
