#include <gtest/gtest.h>

#include "graph/distance_oracle.h"
#include "model/config.h"
#include "model/vehicle.h"
#include "routing/costs.h"
#include "tests/test_util.h"

namespace fm {
namespace {

// Line network: node i to node j takes |i-j| * 60 s.
class CostsTest : public ::testing::Test {
 protected:
  CostsTest()
      : net_(testing::LineNetwork(10, 60.0)),
        oracle_(&net_, OracleBackend::kDijkstra) {}

  RoadNetwork net_;
  DistanceOracle oracle_;
};

TEST_F(CostsTest, ShortestDeliveryTimeDef6) {
  Order o;
  o.restaurant = 2;
  o.customer = 5;
  o.placed_at = 1000.0;
  o.prep_time = 300.0;
  // SDT = prep + SP(r, c) = 300 + 180.
  EXPECT_DOUBLE_EQ(ShortestDeliveryTime(oracle_, o), 480.0);
}

TEST_F(CostsTest, ExtraDeliveryTimeDef7) {
  Order o;
  o.restaurant = 2;
  o.customer = 5;
  o.placed_at = 1000.0;
  o.prep_time = 300.0;
  // Delivered 700 s after placement; SDT is 480 → XDT = 220.
  EXPECT_DOUBLE_EQ(ExtraDeliveryTime(oracle_, o, 1700.0), 220.0);
  // Delivered at the SDT bound → XDT = 0.
  EXPECT_DOUBLE_EQ(ExtraDeliveryTime(oracle_, o, 1480.0), 0.0);
}

TEST_F(CostsTest, SameNodeRestaurantCustomer) {
  Order o;
  o.restaurant = 4;
  o.customer = 4;
  o.placed_at = 0.0;
  o.prep_time = 600.0;
  EXPECT_DOUBLE_EQ(ShortestDeliveryTime(oracle_, o), 600.0);
}

TEST(OrderTest, ReadyAtAndTotalItems) {
  Order a;
  a.placed_at = 100.0;
  a.prep_time = 50.0;
  a.items = 2;
  EXPECT_DOUBLE_EQ(a.ready_at(), 150.0);

  Order b;
  b.items = 3;
  EXPECT_EQ(TotalItems({a, b}), 5);
  EXPECT_EQ(TotalItems({}), 0);
}

TEST(VehicleSnapshotTest, AssignedCounts) {
  VehicleSnapshot v;
  Order a;
  a.items = 2;
  Order b;
  b.items = 3;
  v.picked = {a};
  v.unpicked = {b};
  EXPECT_EQ(v.TotalAssignedOrders(), 2);
  EXPECT_EQ(v.TotalAssignedItems(), 5);
}

TEST(ConfigTest, DefaultsMatchPaper) {
  Config c;
  c.Validate();
  EXPECT_EQ(c.max_orders_per_vehicle, 3);   // MAXO
  EXPECT_EQ(c.max_items_per_vehicle, 10);   // MAXI
  EXPECT_DOUBLE_EQ(c.rejection_penalty, 7200.0);   // Ω = 2 h
  EXPECT_DOUBLE_EQ(c.accumulation_window, 180.0);  // ∆ = 3 min
  EXPECT_DOUBLE_EQ(c.batching_cutoff, 60.0);       // η = 60 s
  EXPECT_DOUBLE_EQ(c.gamma, 0.5);                  // γ
  EXPECT_DOUBLE_EQ(c.max_unassigned_age, 1800.0);  // 30 min rejection
  EXPECT_DOUBLE_EQ(c.max_first_mile, 2700.0);      // 45 min promise
}

}  // namespace
}  // namespace fm
