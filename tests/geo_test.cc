#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geo/geo.h"

namespace fm {
namespace {

constexpr double kPi = M_PI;

TEST(HaversineTest, ZeroForIdenticalPoints) {
  LatLon p{12.97, 77.59};
  EXPECT_DOUBLE_EQ(Haversine(p, p), 0.0);
}

TEST(HaversineTest, OneDegreeLatitudeIsAbout111Km) {
  LatLon a{0.0, 0.0};
  LatLon b{1.0, 0.0};
  EXPECT_NEAR(Haversine(a, b), 111194.9, 50.0);
}

TEST(HaversineTest, SymmetricInArguments) {
  LatLon a{12.9, 77.5};
  LatLon b{13.1, 77.8};
  EXPECT_DOUBLE_EQ(Haversine(a, b), Haversine(b, a));
}

TEST(HaversineTest, TriangleInequalityOnRandomPoints) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    LatLon a{rng.UniformRange(-60, 60), rng.UniformRange(-170, 170)};
    LatLon b{rng.UniformRange(-60, 60), rng.UniformRange(-170, 170)};
    LatLon c{rng.UniformRange(-60, 60), rng.UniformRange(-170, 170)};
    EXPECT_LE(Haversine(a, c), Haversine(a, b) + Haversine(b, c) + 1e-6);
  }
}

TEST(HaversineTest, LongitudeShrinkWithLatitude) {
  // One longitude degree is shorter at 60° latitude than at the equator.
  const Meters at_equator = Haversine({0, 0}, {0, 1});
  const Meters at_60 = Haversine({60, 0}, {60, 1});
  EXPECT_NEAR(at_60 / at_equator, 0.5, 0.01);
}

TEST(BearingTest, CardinalDirections) {
  LatLon origin{10.0, 20.0};
  EXPECT_NEAR(Bearing(origin, {11.0, 20.0}), 0.0, 0.02);           // north
  EXPECT_NEAR(Bearing(origin, {10.0, 21.0}), kPi / 2.0, 0.02);     // east
  EXPECT_NEAR(Bearing(origin, {9.0, 20.0}), kPi, 0.02);            // south
  EXPECT_NEAR(Bearing(origin, {10.0, 19.0}), 3 * kPi / 2.0, 0.02); // west
}

TEST(BearingTest, RangeIsZeroToTwoPi) {
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    LatLon s{rng.UniformRange(-60, 60), rng.UniformRange(-170, 170)};
    LatLon t{rng.UniformRange(-60, 60), rng.UniformRange(-170, 170)};
    const double theta = Bearing(s, t);
    EXPECT_GE(theta, 0.0);
    EXPECT_LT(theta, 2 * kPi);
  }
}

TEST(AngularDistanceTest, ZeroWhenCandidateIsDest) {
  LatLon s{12.9, 77.5};
  LatLon d{13.0, 77.6};
  EXPECT_NEAR(AngularDistance(s, d, d), 0.0, 1e-9);
}

TEST(AngularDistanceTest, OneWhenDiametricallyOpposite) {
  LatLon s{10.0, 20.0};
  LatLon d{10.5, 20.0};   // due north
  LatLon u{9.5, 20.0};    // due south
  EXPECT_NEAR(AngularDistance(s, d, u), 1.0, 1e-3);
}

TEST(AngularDistanceTest, HalfWhenPerpendicular) {
  LatLon s{0.0, 20.0};
  LatLon d{0.5, 20.0};  // north
  LatLon u{0.0, 20.5};  // east
  EXPECT_NEAR(AngularDistance(s, d, u), 0.5, 5e-3);
}

TEST(AngularDistanceTest, AlwaysInUnitInterval) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    LatLon s{rng.UniformRange(-60, 60), rng.UniformRange(-170, 170)};
    LatLon d{rng.UniformRange(-60, 60), rng.UniformRange(-170, 170)};
    LatLon u{rng.UniformRange(-60, 60), rng.UniformRange(-170, 170)};
    const double a = AngularDistance(s, d, u);
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
}

TEST(AngularDistanceTest, StationaryVehicleHasNoPenalty) {
  LatLon s{12.9, 77.5};
  LatLon u{13.0, 77.6};
  EXPECT_DOUBLE_EQ(AngularDistance(s, s, u), 0.0);
}

TEST(DegRadTest, RoundTrip) {
  for (double d : {-180.0, -90.0, 0.0, 45.0, 180.0}) {
    EXPECT_NEAR(RadToDeg(DegToRad(d)), d, 1e-12);
  }
}

}  // namespace
}  // namespace fm
