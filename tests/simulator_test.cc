#include <gtest/gtest.h>

#include "core/greedy_policy.h"
#include "core/matching_policy.h"
#include "graph/distance_oracle.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "tests/test_util.h"

namespace fm {
namespace {

Order MakeOrder(OrderId id, NodeId r, NodeId c, Seconds placed,
                Seconds prep = 0.0, int items = 1) {
  Order o;
  o.id = id;
  o.restaurant = r;
  o.customer = c;
  o.placed_at = placed;
  o.prep_time = prep;
  o.items = items;
  return o;
}

Vehicle MakeVehicle(VehicleId id, NodeId at) {
  Vehicle v;
  v.id = id;
  v.start_node = at;
  return v;
}

class SimulatorTest : public ::testing::Test {
 protected:
  SimulatorTest()
      : net_(testing::LineNetwork(30, 60.0, 500.0)),
        oracle_(&net_, OracleBackend::kDijkstra) {
    config_.accumulation_window = 60.0;
  }

  SimulationInput BaseInput() {
    SimulationInput input;
    input.network = &net_;
    input.oracle = &oracle_;
    input.config = config_;
    input.start_time = 0.0;
    input.end_time = 3600.0;
    input.drain_time = 7200.0;
    input.measure_wall_clock = false;  // deterministic tests
    return input;
  }

  RoadNetwork net_;
  DistanceOracle oracle_;
  Config config_;
};

TEST_F(SimulatorTest, SingleOrderDeliveredWithExactTimeline) {
  // Vehicle at node 0; order placed at t=30 from node 5 to node 8, prep 600.
  // Assignment happens at the first window end (t=60). First mile 300 s
  // (arrive 360), food ready at 630 → wait 270, drop at 630+180=810.
  // SDT = 600 + 180 = 780; delivery duration = 810-30 = 780 → XDT = 0.
  SimulationInput input = BaseInput();
  input.fleet = {MakeVehicle(0, 0)};
  input.orders = {MakeOrder(0, 5, 8, 30.0, 600.0)};
  GreedyPolicy policy(&oracle_, config_);
  Simulator sim(std::move(input), &policy);
  SimulationResult r = sim.Run();

  EXPECT_EQ(r.metrics.orders_delivered, 1u);
  EXPECT_EQ(r.metrics.orders_rejected, 0u);
  ASSERT_EQ(r.outcomes.size(), 1u);
  EXPECT_EQ(r.outcomes[0].state, OrderOutcome::State::kDelivered);
  EXPECT_EQ(r.outcomes[0].vehicle, 0u);
  EXPECT_NEAR(r.outcomes[0].delivered_at, 810.0, 1e-6);
  EXPECT_NEAR(r.outcomes[0].xdt, 0.0, 1e-6);
  EXPECT_NEAR(r.metrics.total_wait_seconds, 270.0, 1e-6);
  // Distance: 5 edges empty (2500 m) + 3 edges loaded (1500 m).
  EXPECT_NEAR(r.metrics.distance_by_load_m[0], 2500.0, 1e-6);
  EXPECT_NEAR(r.metrics.distance_by_load_m[1], 1500.0, 1e-6);
}

TEST_F(SimulatorTest, OrderRejectedWithoutVehicles) {
  SimulationInput input = BaseInput();
  input.fleet = {};
  input.orders = {MakeOrder(0, 5, 8, 30.0)};
  GreedyPolicy policy(&oracle_, config_);
  Simulator sim(std::move(input), &policy);
  SimulationResult r = sim.Run();
  EXPECT_EQ(r.metrics.orders_delivered, 0u);
  EXPECT_EQ(r.metrics.orders_rejected, 1u);
  EXPECT_EQ(r.outcomes[0].state, OrderOutcome::State::kRejected);
}

TEST_F(SimulatorTest, ConservationAcrossManyOrders) {
  Rng rng(404);
  SimulationInput input = BaseInput();
  input.fleet = {MakeVehicle(0, 0), MakeVehicle(1, 15), MakeVehicle(2, 29)};
  std::vector<Order> orders;
  for (int i = 0; i < 30; ++i) {
    orders.push_back(MakeOrder(i, static_cast<NodeId>(rng.UniformInt(30)),
                               static_cast<NodeId>(rng.UniformInt(30)),
                               rng.UniformRange(0.0, 3600.0),
                               rng.UniformRange(60.0, 900.0)));
  }
  std::sort(orders.begin(), orders.end(),
            [](const Order& a, const Order& b) {
              return a.placed_at < b.placed_at;
            });
  for (std::size_t i = 0; i < orders.size(); ++i) {
    orders[i].id = static_cast<OrderId>(i);
  }
  input.orders = orders;
  MatchingPolicy policy(&oracle_, config_,
                        MatchingPolicyOptions::FoodMatch());
  Simulator sim(std::move(input), &policy);
  SimulationResult r = sim.Run();

  EXPECT_EQ(r.metrics.orders_total, 30u);
  EXPECT_EQ(r.metrics.orders_delivered + r.metrics.orders_rejected +
                r.metrics.orders_pending_at_end,
            30u);
  // Long drain and plentiful fleet: everything should complete.
  EXPECT_EQ(r.metrics.orders_pending_at_end, 0u);
  // Every delivered order has nonnegative XDT (constant travel times).
  for (const OrderOutcome& o : r.outcomes) {
    if (o.state == OrderOutcome::State::kDelivered) {
      EXPECT_GE(o.xdt, -1e-6);
    }
  }
}

TEST_F(SimulatorTest, ReshuffleReassignsToBetterVehicle) {
  // Order placed at t=30 far from the only initially-useful vehicle. A
  // second vehicle appears "free" later... we emulate the reshuffle benefit
  // by having two vehicles where the near one is initially busy with a
  // pickup far away:
  // Simpler check: with reshuffle on, an unpicked order may be reassigned;
  // times_assigned can exceed 1 and the order still completes exactly once.
  SimulationInput input = BaseInput();
  input.fleet = {MakeVehicle(0, 29), MakeVehicle(1, 20)};
  input.orders = {
      MakeOrder(0, 0, 3, 30.0, 1500.0),  // long prep: stays unpicked a while
      MakeOrder(1, 19, 25, 100.0, 60.0),
  };
  MatchingPolicy policy(&oracle_, config_,
                        MatchingPolicyOptions::FoodMatch());
  Simulator sim(std::move(input), &policy);
  SimulationResult r = sim.Run();
  EXPECT_EQ(r.metrics.orders_delivered, 2u);
  for (const OrderOutcome& o : r.outcomes) {
    EXPECT_GE(o.times_assigned, 1);
  }
}

TEST_F(SimulatorTest, CapacityNeverExceededDuringRun) {
  // With MAXO=1 and many co-located orders, each vehicle carries at most
  // one order at a time; all must still eventually deliver.
  Config config = config_;
  config.max_orders_per_vehicle = 1;
  SimulationInput input = BaseInput();
  input.config = config;
  input.fleet = {MakeVehicle(0, 5), MakeVehicle(1, 6)};
  std::vector<Order> orders;
  for (int i = 0; i < 6; ++i) {
    orders.push_back(MakeOrder(i, 5, 8 + i, 10.0 + i));
  }
  input.orders = orders;
  GreedyPolicy policy(&oracle_, config);
  Simulator sim(std::move(input), &policy);
  SimulationResult r = sim.Run();
  EXPECT_EQ(r.metrics.orders_delivered + r.metrics.orders_rejected, 6u);
}

TEST_F(SimulatorTest, WindowCountMatchesHorizon) {
  SimulationInput input = BaseInput();
  input.fleet = {MakeVehicle(0, 0)};
  input.orders = {MakeOrder(0, 5, 8, 30.0)};
  input.end_time = 600.0;
  GreedyPolicy policy(&oracle_, config_);
  Simulator sim(std::move(input), &policy);
  SimulationResult r = sim.Run();
  // Early exit once everything is delivered; at least the horizon's windows
  // up to delivery happened, and no overflow with synthetic timing.
  EXPECT_GT(r.metrics.windows, 0u);
  EXPECT_EQ(r.metrics.overflown_windows, 0u);
  EXPECT_DOUBLE_EQ(r.metrics.decision_seconds_total, 0.0);
}

TEST_F(SimulatorTest, PerSlotAttribution) {
  SimulationInput input = BaseInput();
  input.start_time = 13 * 3600.0;  // 13:00
  input.end_time = 14 * 3600.0;
  input.fleet = {MakeVehicle(0, 4)};
  input.orders = {MakeOrder(0, 5, 8, 13 * 3600.0 + 30.0, 60.0)};
  GreedyPolicy policy(&oracle_, config_);
  Simulator sim(std::move(input), &policy);
  SimulationResult r = sim.Run();
  EXPECT_EQ(r.metrics.per_slot[13].orders_placed, 1u);
  EXPECT_EQ(r.metrics.per_slot[13].orders_delivered, 1u);
  EXPECT_GT(r.metrics.per_slot[13].distance_m, 0.0);
  EXPECT_EQ(r.metrics.per_slot[12].orders_placed, 0u);
}

TEST_F(SimulatorTest, ThreadedRunIsIdenticalToSerialRun) {
  // The --threads determinism oracle: the full pipeline (batching →
  // FOODGRAPH → KM → reshuffle → parallel plan rebuild) must produce
  // identical metrics, outcomes, and trace events for 1 vs 4 lanes.
  auto run = [&](int threads) {
    Rng rng(1234);
    SimulationInput input = BaseInput();
    input.config.threads = threads;
    input.fleet = {MakeVehicle(0, 2), MakeVehicle(1, 14), MakeVehicle(2, 27)};
    std::vector<Order> orders;
    for (int i = 0; i < 40; ++i) {
      orders.push_back(MakeOrder(i, static_cast<NodeId>(rng.UniformInt(30)),
                                 static_cast<NodeId>(rng.UniformInt(30)),
                                 rng.UniformRange(0.0, 3600.0),
                                 rng.UniformRange(60.0, 900.0)));
    }
    std::sort(orders.begin(), orders.end(),
              [](const Order& a, const Order& b) {
                return a.placed_at < b.placed_at;
              });
    for (std::size_t i = 0; i < orders.size(); ++i) {
      orders[i].id = static_cast<OrderId>(i);
    }
    input.orders = orders;
    MatchingPolicy policy(&oracle_, input.config,
                          MatchingPolicyOptions::FoodMatch());
    Simulator sim(std::move(input), &policy);
    TraceRecorder recorder;
    sim.set_window_observer(recorder.MakeObserver());
    SimulationResult result = sim.Run();
    return std::make_tuple(std::move(result), recorder.windows().size(),
                           recorder.assignments().size());
  };

  const auto [serial, serial_windows, serial_assignments] = run(1);
  const auto [threaded, threaded_windows, threaded_assignments] = run(4);

  // Metrics: exact equality, including every floating-point accumulator.
  const Metrics& a = serial.metrics;
  const Metrics& b = threaded.metrics;
  EXPECT_EQ(b.orders_delivered, a.orders_delivered);
  EXPECT_EQ(b.orders_rejected, a.orders_rejected);
  EXPECT_EQ(b.orders_pending_at_end, a.orders_pending_at_end);
  EXPECT_EQ(b.cost_evaluations, a.cost_evaluations);
  EXPECT_EQ(b.windows, a.windows);
  EXPECT_EQ(b.total_xdt_seconds, a.total_xdt_seconds);
  EXPECT_EQ(b.total_delivery_seconds, a.total_delivery_seconds);
  EXPECT_EQ(b.total_wait_seconds, a.total_wait_seconds);
  for (int k = 0; k <= Metrics::kMaxLoadBucket; ++k) {
    EXPECT_EQ(b.distance_by_load_m[k], a.distance_by_load_m[k]) << "k=" << k;
  }
  // Outcomes: per-order identical assignment history and delivery times.
  ASSERT_EQ(threaded.outcomes.size(), serial.outcomes.size());
  for (std::size_t i = 0; i < serial.outcomes.size(); ++i) {
    EXPECT_EQ(threaded.outcomes[i].state, serial.outcomes[i].state) << i;
    EXPECT_EQ(threaded.outcomes[i].vehicle, serial.outcomes[i].vehicle) << i;
    EXPECT_EQ(threaded.outcomes[i].delivered_at,
              serial.outcomes[i].delivered_at)
        << i;
    EXPECT_EQ(threaded.outcomes[i].xdt, serial.outcomes[i].xdt) << i;
    EXPECT_EQ(threaded.outcomes[i].times_assigned,
              serial.outcomes[i].times_assigned)
        << i;
  }
  // Trace: same event counts (entries are value types derived from the
  // decisions, which were just shown identical).
  EXPECT_EQ(threaded_windows, serial_windows);
  EXPECT_EQ(threaded_assignments, serial_assignments);
}

TEST_F(SimulatorTest, OrdersPerKmExampleFormula) {
  // Verify the metric formula on a crafted Metrics value (the paper's
  // §V-B example: (0·6 + 1·5 + 2·8 + 1·5)/(6+5+8+5) = 1.083).
  Metrics m;
  m.distance_by_load_m[0] = 6000.0;
  m.distance_by_load_m[1] = 10000.0;  // 5 km + 5 km at load 1
  m.distance_by_load_m[2] = 8000.0;
  EXPECT_NEAR(m.OrdersPerKm(), (0 * 6 + 1 * 10 + 2 * 8) / 24.0, 1e-9);
}

TEST_F(SimulatorTest, ObserverSeesWindows) {
  SimulationInput input = BaseInput();
  input.fleet = {MakeVehicle(0, 0)};
  input.orders = {MakeOrder(0, 5, 8, 30.0)};
  GreedyPolicy policy(&oracle_, config_);
  Simulator sim(std::move(input), &policy);
  int windows_seen = 0;
  int assignments_seen = 0;
  sim.set_window_observer([&](const WindowView& view) {
    ++windows_seen;
    assignments_seen += static_cast<int>(view.decision->assignments.size());
    EXPECT_NE(view.pool, nullptr);
    EXPECT_NE(view.snapshots, nullptr);
  });
  sim.Run();
  EXPECT_GT(windows_seen, 0);
  EXPECT_EQ(assignments_seen, 1);
}

TEST_F(SimulatorTest, OffDutyVehiclesAreInvisible) {
  SimulationInput input = BaseInput();
  Vehicle off = MakeVehicle(0, 5);
  off.on_duty_from = 50000.0;  // never on duty within horizon
  input.fleet = {off};
  input.orders = {MakeOrder(0, 5, 8, 30.0)};
  GreedyPolicy policy(&oracle_, config_);
  Simulator sim(std::move(input), &policy);
  SimulationResult r = sim.Run();
  EXPECT_EQ(r.metrics.orders_delivered, 0u);
  EXPECT_EQ(r.metrics.orders_rejected, 1u);
}

TEST_F(SimulatorTest, XdtMatchesDefinitionPerOrder) {
  SimulationInput input = BaseInput();
  input.fleet = {MakeVehicle(0, 0)};
  Order o = MakeOrder(0, 5, 8, 30.0, 600.0);
  input.orders = {o};
  GreedyPolicy policy(&oracle_, config_);
  Simulator sim(std::move(input), &policy);
  SimulationResult r = sim.Run();
  ASSERT_EQ(r.outcomes[0].state, OrderOutcome::State::kDelivered);
  const Seconds sdt = 600.0 + 180.0;
  EXPECT_NEAR(r.outcomes[0].xdt,
              (r.outcomes[0].delivered_at - o.placed_at) - sdt, 1e-9);
}

}  // namespace
}  // namespace fm
