#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/distance_oracle.h"
#include "routing/insertion_planner.h"
#include "tests/test_util.h"

namespace fm {
namespace {

Order MakeOrder(OrderId id, NodeId r, NodeId c, Seconds placed = 0.0,
                Seconds prep = 0.0) {
  Order o;
  o.id = id;
  o.restaurant = r;
  o.customer = c;
  o.placed_at = placed;
  o.prep_time = prep;
  return o;
}

class InsertionPlannerTest : public ::testing::Test {
 protected:
  InsertionPlannerTest()
      : net_(testing::LineNetwork(30, 60.0)),
        oracle_(&net_, OracleBackend::kDijkstra) {}

  RoadNetwork net_;
  DistanceOracle oracle_;
};

TEST_F(InsertionPlannerTest, EmptyRequestTrivial) {
  PlanRequest req;
  req.start = 5;
  req.start_time = 100.0;
  const PlanResult r = PlanRouteByInsertion(oracle_, req);
  EXPECT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.cost, 0.0);
}

TEST_F(InsertionPlannerTest, SingleOrderMatchesOptimal) {
  PlanRequest req;
  req.start = 0;
  req.start_time = 0.0;
  req.to_pick = {MakeOrder(0, 10, 12, 0.0, 100.0)};
  const PlanResult ins = PlanRouteByInsertion(oracle_, req);
  const PlanResult opt = PlanOptimalRoute(oracle_, req);
  ASSERT_TRUE(ins.feasible);
  EXPECT_DOUBLE_EQ(ins.cost, opt.cost);
}

TEST_F(InsertionPlannerTest, ProducesValidPlans) {
  Rng rng(41);
  for (int trial = 0; trial < 20; ++trial) {
    PlanRequest req;
    req.start = static_cast<NodeId>(rng.UniformInt(30));
    req.start_time = rng.UniformRange(0.0, 40000.0);
    const int onboard_n = rng.UniformIntRange(0, 2);
    const int pick_n = rng.UniformIntRange(1, 4);
    OrderId id = 0;
    for (int i = 0; i < onboard_n; ++i) {
      req.onboard.push_back(MakeOrder(id++, rng.UniformInt(30),
                                      rng.UniformInt(30), req.start_time));
    }
    for (int i = 0; i < pick_n; ++i) {
      req.to_pick.push_back(MakeOrder(id++, rng.UniformInt(30),
                                      rng.UniformInt(30), req.start_time,
                                      rng.UniformRange(0, 600)));
    }
    const PlanResult r = PlanRouteByInsertion(oracle_, req);
    ASSERT_TRUE(r.feasible);
    EXPECT_TRUE(IsValidPlan(r.plan, req.onboard, req.to_pick));
  }
}

// Property: insertion never beats the exhaustive optimum, and stays within
// a modest factor of it on small instances.
class InsertionVsOptimalTest : public ::testing::TestWithParam<int> {};

TEST_P(InsertionVsOptimalTest, UpperBoundsOptimal) {
  Rng rng(6000 + GetParam());
  RoadNetwork net =
      testing::RandomConnectedNetwork(rng, 25, 80, /*time_varying=*/true);
  DistanceOracle oracle(&net, OracleBackend::kDijkstra);
  for (int trial = 0; trial < 10; ++trial) {
    PlanRequest req;
    req.start = static_cast<NodeId>(rng.UniformInt(net.num_nodes()));
    req.start_time = rng.UniformRange(0.0, 40000.0);
    const int pick_n = rng.UniformIntRange(1, 3);
    for (int i = 0; i < pick_n; ++i) {
      req.to_pick.push_back(
          MakeOrder(static_cast<OrderId>(i),
                    static_cast<NodeId>(rng.UniformInt(net.num_nodes())),
                    static_cast<NodeId>(rng.UniformInt(net.num_nodes())),
                    req.start_time, rng.UniformRange(0, 600)));
    }
    const PlanResult ins = PlanRouteByInsertion(oracle, req);
    const PlanResult opt = PlanOptimalRoute(oracle, req);
    ASSERT_EQ(ins.feasible, opt.feasible);
    if (opt.feasible) {
      EXPECT_GE(ins.cost, opt.cost - 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InsertionVsOptimalTest, ::testing::Range(0, 5));

TEST_F(InsertionPlannerTest, HandlesSixOrders) {
  // Beyond the exhaustive planner's practical regime: 6 orders = 12 stops.
  PlanRequest req;
  req.start = 0;
  req.start_time = 0.0;
  for (int i = 0; i < 6; ++i) {
    req.to_pick.push_back(
        MakeOrder(static_cast<OrderId>(i), static_cast<NodeId>(3 + 4 * i),
                  static_cast<NodeId>(5 + 4 * i), 0.0, 60.0));
  }
  const PlanResult r = PlanRouteByInsertion(oracle_, req);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.plan.stops.size(), 12u);
  EXPECT_TRUE(IsValidPlan(r.plan, {}, req.to_pick));
}

TEST_F(InsertionPlannerTest, ShardedCandidateSearchMatchesSerialPlan) {
  // Parallel candidate evaluation picks the lowest-indexed minimum, i.e.
  // exactly the slot the serial first-strict-improvement loop selects — the
  // resulting plan must be identical stop for stop.
  Rng rng(77);
  for (int trial = 0; trial < 5; ++trial) {
    PlanRequest req;
    req.start = static_cast<NodeId>(rng.UniformInt(30));
    req.start_time = 0.0;
    for (int i = 0; i < 5; ++i) {
      req.to_pick.push_back(
          MakeOrder(static_cast<OrderId>(i),
                    static_cast<NodeId>(rng.UniformInt(30)),
                    static_cast<NodeId>(rng.UniformInt(30)), 0.0,
                    rng.UniformRange(0.0, 300.0)));
    }
    const PlanResult serial = PlanRouteByInsertion(oracle_, req);
    for (int threads : {2, 4}) {
      ThreadPool pool(threads);
      const PlanResult parallel = PlanRouteByInsertion(oracle_, req, &pool);
      ASSERT_EQ(parallel.feasible, serial.feasible);
      if (!serial.feasible) continue;
      EXPECT_EQ(parallel.cost, serial.cost);  // bit-identical
      ASSERT_EQ(parallel.plan.stops.size(), serial.plan.stops.size());
      for (std::size_t s = 0; s < serial.plan.stops.size(); ++s) {
        EXPECT_EQ(parallel.plan.stops[s].node, serial.plan.stops[s].node);
        EXPECT_EQ(parallel.plan.stops[s].order, serial.plan.stops[s].order);
        EXPECT_EQ(parallel.plan.stops[s].type, serial.plan.stops[s].type);
      }
    }
  }
}

TEST_F(InsertionPlannerTest, FreeStartBeginsAtPickup) {
  PlanRequest req;
  req.start = kInvalidNode;
  req.start_time = 0.0;
  req.to_pick = {MakeOrder(0, 8, 12), MakeOrder(1, 20, 16)};
  const PlanResult r = PlanRouteByInsertion(oracle_, req);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.plan.stops.front().type, StopType::kPickup);
}

TEST_F(InsertionPlannerTest, InfeasibleWhenUnreachable) {
  RoadNetwork::Builder builder;
  builder.AddNode({0, 0});
  builder.AddNode({0, 0.01});
  builder.AddEdgeConstant(0, 1, 100, 10);
  RoadNetwork net = builder.Build();
  DistanceOracle oracle(&net, OracleBackend::kDijkstra);
  PlanRequest req;
  req.start = 0;
  req.start_time = 0.0;
  req.to_pick = {MakeOrder(0, 1, 0)};
  const PlanResult r = PlanRouteByInsertion(oracle, req);
  EXPECT_FALSE(r.feasible);
}

}  // namespace
}  // namespace fm
