// The streaming intake/executor split: event pre-validation, the
// WindowExecutor decorator's bit-identity with the synchronous path, the
// StreamReplay × ReplayEventStream equivalence for every producer/shard
// combination (the golden streaming gate), event-log round-trips, retention
// of future-window events, prestage counters, and inline backpressure
// resolution on the consumer thread. The multi-threaded cases run under
// ThreadSanitizer in CI.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/dispatch_engine.h"
#include "core/engine_event.h"
#include "core/intake_stage.h"
#include "core/policy_registry.h"
#include "core/window_executor.h"
#include "gen/city_gen.h"
#include "graph/distance_oracle.h"
#include "serving/event_log.h"
#include "serving/event_replay.h"
#include "serving/event_source.h"
#include "serving/region_partitioner.h"
#include "serving/sharded_dispatch_engine.h"
#include "serving/streaming_replay.h"

namespace fm {
namespace {

struct Scenario {
  RoadNetwork network;
  std::vector<Vehicle> fleet;
  std::vector<Order> orders;
};

Scenario MakeScenario(std::uint64_t seed, int num_vehicles, int num_orders,
                      Seconds horizon) {
  Rng rng(seed);
  CityGenParams params;
  params.grid_width = 12;
  params.grid_height = 12;
  params.congestion = UrbanCongestion(1.8);
  Scenario s;
  s.network = GenerateGridCity(params, rng);
  for (int i = 0; i < num_vehicles; ++i) {
    Vehicle v;
    v.id = static_cast<VehicleId>(i);
    v.start_node = static_cast<NodeId>(rng.UniformInt(s.network.num_nodes()));
    s.fleet.push_back(v);
  }
  for (int i = 0; i < num_orders; ++i) {
    Order o;
    o.restaurant = static_cast<NodeId>(rng.UniformInt(s.network.num_nodes()));
    o.customer = static_cast<NodeId>(rng.UniformInt(s.network.num_nodes()));
    o.placed_at = 12 * 3600.0 + rng.UniformRange(0.0, horizon);
    o.prep_time = rng.UniformRange(120.0, 1200.0);
    o.items = rng.UniformIntRange(1, 4);
    s.orders.push_back(o);
  }
  std::sort(s.orders.begin(), s.orders.end(),
            [](const Order& a, const Order& b) {
              return a.placed_at < b.placed_at;
            });
  for (std::size_t i = 0; i < s.orders.size(); ++i) {
    s.orders[i].id = static_cast<OrderId>(i);
  }
  return s;
}

void ExpectWindowResultsEqual(const std::vector<WindowResult>& a,
                              const std::vector<WindowResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t w = 0; w < a.size(); ++w) {
    SCOPED_TRACE("window " + std::to_string(w));
    EXPECT_EQ(a[w].now, b[w].now);
    EXPECT_EQ(a[w].rejected, b[w].rejected);
    EXPECT_EQ(a[w].reshuffled_vehicles, b[w].reshuffled_vehicles);
    ASSERT_EQ(a[w].decision.assignments.size(),
              b[w].decision.assignments.size());
    for (std::size_t i = 0; i < a[w].decision.assignments.size(); ++i) {
      EXPECT_EQ(a[w].decision.assignments[i].vehicle,
                b[w].decision.assignments[i].vehicle);
      EXPECT_EQ(a[w].decision.assignments[i].orders,
                b[w].decision.assignments[i].orders);
    }
    ASSERT_EQ(a[w].reinstatements.size(), b[w].reinstatements.size());
    for (std::size_t i = 0; i < a[w].reinstatements.size(); ++i) {
      EXPECT_EQ(a[w].reinstatements[i].order, b[w].reinstatements[i].order);
      EXPECT_EQ(a[w].reinstatements[i].vehicle,
                b[w].reinstatements[i].vehicle);
    }
    EXPECT_EQ(a[w].decision.cost_evaluations,
              b[w].decision.cost_evaluations);
    EXPECT_EQ(a[w].decision_seconds, b[w].decision_seconds);
  }
}

Order ValidOrder(OrderId id = 1) {
  Order o;
  o.id = id;
  o.restaurant = 2;
  o.customer = 3;
  o.placed_at = 100.0;
  o.items = 2;
  o.prep_time = 300.0;
  return o;
}

// ---- Pre-validation ----

TEST(ValidEngineEventTest, AcceptsWellFormedEvents) {
  EXPECT_TRUE(ValidEngineEvent(OrderPlaced{ValidOrder()}));
  VehicleSnapshot snap;
  snap.id = 7;
  snap.location = 4;
  snap.next_destination = 4;
  EXPECT_TRUE(ValidEngineEvent(VehicleStateUpdate{snap, true}));
  EXPECT_TRUE(ValidEngineEvent(OrderDelivered{1, 2}));
  EXPECT_TRUE(ValidEngineEvent(OrderDelivered{1, kInvalidVehicle}));
  EXPECT_TRUE(ValidEngineEvent(VehicleRetired{3}));
}

TEST(ValidEngineEventTest, RejectsMalformedEvents) {
  {
    Order o = ValidOrder();
    o.id = kInvalidOrder;
    EXPECT_FALSE(ValidEngineEvent(OrderPlaced{o}));
  }
  {
    Order o = ValidOrder();
    o.restaurant = kInvalidNode;
    EXPECT_FALSE(ValidEngineEvent(OrderPlaced{o}));
  }
  {
    Order o = ValidOrder();
    o.customer = kInvalidNode;
    EXPECT_FALSE(ValidEngineEvent(OrderPlaced{o}));
  }
  {
    Order o = ValidOrder();
    o.items = 0;
    EXPECT_FALSE(ValidEngineEvent(OrderPlaced{o}));
  }
  {
    Order o = ValidOrder();
    o.prep_time = -1.0;
    EXPECT_FALSE(ValidEngineEvent(OrderPlaced{o}));
  }
  {
    VehicleSnapshot snap;  // both ids invalid
    EXPECT_FALSE(ValidEngineEvent(VehicleStateUpdate{snap, true}));
  }
  EXPECT_FALSE(ValidEngineEvent(OrderDelivered{kInvalidOrder, 2}));
  EXPECT_FALSE(ValidEngineEvent(VehicleRetired{kInvalidVehicle}));
}

// ---- IntakeStage ----

TEST(IntakeStageTest, ShedsInvalidEventsWithCounter) {
  IntakeOptions options;
  options.queue_capacity = 8;
  IntakeStage stage(options);
  Order bad = ValidOrder();
  bad.items = 0;
  EXPECT_EQ(stage.TryAbsorb({0.0, 0, OrderPlaced{bad}}),
            AbsorbResult::kDroppedInvalid);
  EXPECT_FALSE(stage.Absorb({0.0, 1, OrderPlaced{bad}}));
  EXPECT_EQ(stage.dropped_invalid(), 2u);
  EXPECT_EQ(stage.absorbed(), 0u);

  EXPECT_EQ(stage.TryAbsorb({0.0, 2, OrderPlaced{ValidOrder()}}),
            AbsorbResult::kStaged);
  EXPECT_EQ(stage.absorbed(), 1u);
  std::vector<StampedEvent> drained;
  EXPECT_EQ(stage.DrainInto(&drained), 1u);
}

TEST(IntakeStageTest, ReportsBackpressureWhenRingIsFull) {
  IntakeOptions options;
  options.queue_capacity = 2;
  IntakeStage stage(options);
  EXPECT_EQ(stage.TryAbsorb({0.0, 0, OrderPlaced{ValidOrder(1)}}),
            AbsorbResult::kStaged);
  EXPECT_EQ(stage.TryAbsorb({0.0, 1, OrderPlaced{ValidOrder(2)}}),
            AbsorbResult::kStaged);
  EXPECT_EQ(stage.TryAbsorb({0.0, 2, OrderPlaced{ValidOrder(3)}}),
            AbsorbResult::kBackpressure);
  std::vector<StampedEvent> drained;
  EXPECT_EQ(stage.DrainInto(&drained), 2u);
  EXPECT_EQ(stage.TryAbsorb({0.0, 3, OrderPlaced{ValidOrder(4)}}),
            AbsorbResult::kStaged);
}

TEST(IntakeStageTest, PrestageResolvesOrderLegsThroughTheOracle) {
  Scenario s = MakeScenario(42, 0, 0, 600.0);
  DistanceOracle oracle(&s.network, OracleBackend::kDijkstra);
  IntakeOptions options;
  options.queue_capacity = 16;
  options.prestage = true;
  options.oracle = &oracle;
  IntakeStage stage(options);
  Order o = ValidOrder();
  o.restaurant = 0;
  o.customer = 5;
  EXPECT_EQ(stage.TryAbsorb({0.0, 0, OrderPlaced{o}}), AbsorbResult::kStaged);
  VehicleSnapshot snap;
  snap.id = 1;
  snap.location = 0;
  EXPECT_EQ(stage.TryAbsorb({0.0, 1, VehicleStateUpdate{snap, true}}),
            AbsorbResult::kStaged);
  // Exactly the order was pre-routed; vehicle updates are not.
  EXPECT_EQ(stage.prestaged(), 1u);
}

// ---- WindowExecutor ----

// The decorator path: a simulator-style driver talking DispatchCore to the
// executor must get bit-identical windows to talking to the engine
// directly — the tentpole's "drop-in" guarantee.
TEST(WindowExecutorTest, DecoratorPathBitIdenticalToSynchronousEngine) {
  Scenario s = MakeScenario(1357, 6, 60, 1800.0);
  DistanceOracle oracle(&s.network, OracleBackend::kDijkstra);
  Config config;
  config.accumulation_window = 120.0;
  const Seconds start = 12 * 3600.0;

  std::unique_ptr<AssignmentPolicy> policy =
      PolicyRegistry::Global().Create("foodmatch", &oracle, config);
  DispatchEngine direct(policy.get(), config,
                        DispatchEngineOptions{.measure_wall_clock = false});
  const std::vector<WindowResult> expected =
      ReplayOrderStream(direct, s.fleet, s.orders, start, start + 1800.0,
                        120.0);

  std::unique_ptr<AssignmentPolicy> policy2 =
      PolicyRegistry::Global().Create("foodmatch", &oracle, config);
  DispatchEngine engine(policy2.get(), config,
                        DispatchEngineOptions{.measure_wall_clock = false});
  WindowExecutorOptions options;
  options.queue_capacity = 8;  // tiny ring: Handle must pump inline
  options.oracle = &oracle;
  WindowExecutor executor(&engine, options);
  const std::vector<WindowResult> streamed =
      ReplayOrderStream(executor, s.fleet, s.orders, start, start + 1800.0,
                        120.0);
  ExpectWindowResultsEqual(expected, streamed);
  EXPECT_EQ(executor.dropped_invalid(), 0u);
  EXPECT_EQ(executor.retained_events(), 0u);
}

TEST(WindowExecutorTest, RetainsEventsStampedBeyondTheClosingWindow) {
  Scenario s = MakeScenario(7, 1, 0, 600.0);
  DistanceOracle oracle(&s.network, OracleBackend::kDijkstra);
  Config config;
  config.accumulation_window = 100.0;
  std::unique_ptr<AssignmentPolicy> policy =
      PolicyRegistry::Global().Create("greedy", &oracle, config);
  DispatchEngine engine(policy.get(), config,
                        DispatchEngineOptions{.measure_wall_clock = false});
  WindowExecutor executor(&engine, WindowExecutorOptions{});

  Order early = ValidOrder(1);
  early.placed_at = 100.0;
  Order late = ValidOrder(2);
  late.placed_at = 500.0;
  ASSERT_TRUE(executor.Submit({100.0, 0, OrderPlaced{early}}));
  ASSERT_TRUE(executor.Submit({500.0, 1, OrderPlaced{late}}));
  EXPECT_EQ(executor.pending_orders(), 2u);  // both staged

  executor.CloseWindow(200.0);
  // The early order reached the engine's pool (no vehicles — it stays
  // pending there); the late one is retained in the executor.
  EXPECT_EQ(executor.retained_events(), 1u);
  EXPECT_EQ(executor.pending_orders(), 2u);
  EXPECT_EQ(engine.pending_orders(), 1u);

  executor.CloseWindow(600.0);
  EXPECT_EQ(executor.retained_events(), 0u);
  EXPECT_EQ(engine.pending_orders(), 2u);
}

// ---- The golden streaming gate ----

// StreamReplay must reproduce the synchronous replay bit for bit for every
// combination of shards and producer threads — the determinism contract of
// the whole intake path.
TEST(StreamingEquivalenceTest, BitIdenticalAcrossProducersAndShards) {
  Scenario s = MakeScenario(2468, 8, 70, 1800.0);
  DistanceOracle oracle(&s.network, OracleBackend::kDijkstra);
  const Seconds start = 12 * 3600.0;
  const Seconds end = start + 1800.0;
  const Seconds delta = 120.0;
  const std::vector<StampedEvent> events =
      MakeBatchReplayEvents(s.fleet, s.orders, start);

  for (const int shards : {1, 4}) {
    SCOPED_TRACE("shards " + std::to_string(shards));
    Config config;
    config.accumulation_window = delta;
    config.shards = shards;
    GridRegionPartitioner partitioner(&s.network, shards);

    auto make_core = [&](std::unique_ptr<AssignmentPolicy>* policy,
                         std::unique_ptr<DispatchEngine>* engine,
                         std::unique_ptr<ShardedDispatchEngine>* sharded)
        -> DispatchCore* {
      if (shards > 1) {
        ShardedEngineOptions options;
        options.engine.measure_wall_clock = false;
        *sharded = std::make_unique<ShardedDispatchEngine>(
            &partitioner, "foodmatch", &oracle, config, PolicyOptions{},
            options);
        return sharded->get();
      }
      *policy = PolicyRegistry::Global().Create("foodmatch", &oracle, config);
      *engine = std::make_unique<DispatchEngine>(
          policy->get(), config,
          DispatchEngineOptions{.measure_wall_clock = false});
      return engine->get();
    };

    std::unique_ptr<AssignmentPolicy> batch_policy;
    std::unique_ptr<DispatchEngine> batch_engine;
    std::unique_ptr<ShardedDispatchEngine> batch_sharded;
    DispatchCore* batch_core =
        make_core(&batch_policy, &batch_engine, &batch_sharded);
    VectorEventSource source(events);
    const std::vector<WindowResult> expected =
        ReplayEventStream(*batch_core, source, start, end, delta);

    for (const int producers : {1, 4}) {
      SCOPED_TRACE("producers " + std::to_string(producers));
      std::unique_ptr<AssignmentPolicy> policy;
      std::unique_ptr<DispatchEngine> engine;
      std::unique_ptr<ShardedDispatchEngine> sharded;
      DispatchCore* core = make_core(&policy, &engine, &sharded);

      StreamReplayStats stats;
      StreamReplayOptions options;
      options.producers = producers;
      options.stages = shards;
      options.queue_capacity = 32;  // small rings: exercise backpressure
      options.prestage = true;
      options.oracle = &oracle;
      if (shards > 1) options.router = MakeRegionStageRouter(&partitioner);
      options.stats = &stats;
      const std::vector<WindowResult> streamed =
          StreamReplay(*core, events, start, end, delta, options);
      ExpectWindowResultsEqual(expected, streamed);
      EXPECT_EQ(stats.events_submitted, events.size());
      EXPECT_EQ(stats.orders_submitted, s.orders.size());
      EXPECT_EQ(stats.dropped_invalid, 0u);
      EXPECT_EQ(stats.order_latency_seconds.size(), s.orders.size());
    }
  }
}

// ---- Event log ----

TEST(EventLogTest, RoundTripPreservesStreamAndResults) {
  Scenario s = MakeScenario(99, 4, 30, 1200.0);
  const Seconds start = 12 * 3600.0;
  const std::vector<StampedEvent> events =
      MakeBatchReplayEvents(s.fleet, s.orders, start);

  const std::string path = ::testing::TempDir() + "intake_roundtrip.log";
  WriteEventLog(path, events);
  const std::vector<StampedEvent> reread = ReadEventLog(path);
  std::remove(path.c_str());

  ASSERT_EQ(reread.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    SCOPED_TRACE("event " + std::to_string(i));
    EXPECT_EQ(reread[i].timestamp, events[i].timestamp);
    EXPECT_EQ(reread[i].sequence, events[i].sequence);
    ASSERT_EQ(reread[i].event.index(), events[i].event.index());
    if (const auto* placed = std::get_if<OrderPlaced>(&events[i].event)) {
      EXPECT_EQ(std::get<OrderPlaced>(reread[i].event).order, placed->order);
    } else if (const auto* update =
                   std::get_if<VehicleStateUpdate>(&events[i].event)) {
      const auto& snap = std::get<VehicleStateUpdate>(reread[i].event);
      EXPECT_EQ(snap.snapshot.id, update->snapshot.id);
      EXPECT_EQ(snap.snapshot.location, update->snapshot.location);
      EXPECT_EQ(snap.on_duty, update->on_duty);
    }
  }

  // And the replayed decisions agree, which is the property that matters.
  DistanceOracle oracle(&s.network, OracleBackend::kDijkstra);
  Config config;
  config.accumulation_window = 120.0;
  auto run = [&](const std::vector<StampedEvent>& stream) {
    std::unique_ptr<AssignmentPolicy> policy =
        PolicyRegistry::Global().Create("foodmatch", &oracle, config);
    DispatchEngine engine(policy.get(), config,
                          DispatchEngineOptions{.measure_wall_clock = false});
    VectorEventSource source(stream);
    return ReplayEventStream(engine, source, start, start + 1200.0, 120.0);
  };
  ExpectWindowResultsEqual(run(events), run(reread));
}

TEST(EventLogDeathTest, MalformedLineDies) {
  const std::string path = ::testing::TempDir() + "intake_malformed.log";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("# foodmatch-event-log-v1\nX,0,0.0,1\n", f);
    std::fclose(f);
  }
  EXPECT_DEATH(ReadEventLog(path), "malformed event log line");
  std::remove(path.c_str());
}

TEST(EventLogDeathTest, OutOfOrderStreamDies) {
  const std::string path = ::testing::TempDir() + "intake_unordered.log";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("R,5,100.0,1\nR,4,50.0,2\n", f);
    std::fclose(f);
  }
  EXPECT_DEATH(ReadEventLog(path), "stream order");
  std::remove(path.c_str());
}

// ---- Prestage neutrality ----

TEST(StreamingEquivalenceTest, PrestageToggleDoesNotChangeResults) {
  Scenario s = MakeScenario(555, 5, 40, 1200.0);
  DistanceOracle oracle(&s.network, OracleBackend::kDijkstra);
  const Seconds start = 12 * 3600.0;
  const std::vector<StampedEvent> events =
      MakeBatchReplayEvents(s.fleet, s.orders, start);
  Config config;
  config.accumulation_window = 120.0;
  auto run = [&](bool prestage) {
    std::unique_ptr<AssignmentPolicy> policy =
        PolicyRegistry::Global().Create("foodmatch", &oracle, config);
    DispatchEngine engine(policy.get(), config,
                          DispatchEngineOptions{.measure_wall_clock = false});
    StreamReplayOptions options;
    options.producers = 2;
    options.prestage = prestage;
    options.oracle = prestage ? &oracle : nullptr;
    return StreamReplay(engine, events, start, start + 1200.0, 120.0,
                        options);
  };
  ExpectWindowResultsEqual(run(true), run(false));
}

}  // namespace
}  // namespace fm
