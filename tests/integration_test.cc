// End-to-end integration: generated city workloads run through the full
// pipeline under each policy; checks cross-module invariants and the
// directional claims the paper's evaluation rests on.
#include <gtest/gtest.h>

#include "core/greedy_policy.h"
#include "core/matching_policy.h"
#include "core/reyes_policy.h"
#include "gen/workload.h"
#include "graph/distance_oracle.h"
#include "sim/simulator.h"

namespace fm {
namespace {

// A small city: quick enough for tests but large enough that batching and
// matching decisions are non-trivial.
Workload SmallCity(std::uint64_t day = 0) {
  CityProfile p = CityAProfile(/*scale=*/80.0);
  p.city.grid_width = 18;
  p.city.grid_height = 18;
  p.orders_per_day = 700;
  p.num_vehicles = 14;
  p.num_restaurants = 20;
  WorkloadOptions options;
  options.start_time = 11 * 3600.0;
  options.end_time = 13 * 3600.0;
  options.day = day;
  return GenerateWorkload(p, options);
}

SimulationInput MakeInput(const Workload& w, const DistanceOracle* oracle,
                          const Config& config) {
  SimulationInput input;
  input.network = &w.network;
  input.oracle = oracle;
  input.config = config;
  input.fleet = w.fleet;
  input.orders = w.orders;
  input.start_time = 11 * 3600.0;
  input.end_time = 13 * 3600.0;
  input.drain_time = 5400.0;
  input.measure_wall_clock = false;
  return input;
}

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest() : workload_(SmallCity()) {
    oracle_ = std::make_unique<DistanceOracle>(&workload_.network,
                                               OracleBackend::kHubLabels);
    config_.accumulation_window = workload_.profile.default_delta;
  }

  SimulationResult RunPolicy(AssignmentPolicy* policy) {
    SimulationInput input = MakeInput(workload_, oracle_.get(), config_);
    Simulator sim(std::move(input), policy);
    return sim.Run();
  }

  Workload workload_;
  std::unique_ptr<DistanceOracle> oracle_;
  Config config_;
};

TEST_F(IntegrationTest, AllPoliciesConserveOrders) {
  GreedyPolicy greedy(oracle_.get(), config_);
  MatchingPolicy km(oracle_.get(), config_, MatchingPolicyOptions::VanillaKM());
  MatchingPolicy foodmatch(oracle_.get(), config_,
                           MatchingPolicyOptions::FoodMatch());
  ReyesPolicy reyes(&workload_.network, config_);
  for (AssignmentPolicy* policy :
       std::vector<AssignmentPolicy*>{&greedy, &km, &foodmatch, &reyes}) {
    const SimulationResult r = RunPolicy(policy);
    EXPECT_EQ(r.metrics.orders_total, workload_.orders.size())
        << policy->name();
    EXPECT_EQ(r.metrics.orders_delivered + r.metrics.orders_rejected +
                  r.metrics.orders_pending_at_end,
              r.metrics.orders_total)
        << policy->name();
    // The fleet is adequate: most orders must be delivered.
    EXPECT_GT(r.metrics.orders_delivered, r.metrics.orders_total / 2)
        << policy->name();
  }
}

TEST_F(IntegrationTest, FoodMatchImprovesOperationalEfficiency) {
  // The regime-robust claims of Fig. 6(d–e): FOODMATCH substantially cuts
  // driver waiting time (the paper reports ≈40 %) and delivers more orders
  // per kilometer than Greedy. (The XDT headline of Fig. 6(c) emerges at
  // metropolitan load and is reproduced by bench_fig6cde_vs_greedy.)
  GreedyPolicy greedy(oracle_.get(), config_);
  MatchingPolicy foodmatch(oracle_.get(), config_,
                           MatchingPolicyOptions::FoodMatch());
  const SimulationResult rg = RunPolicy(&greedy);
  const SimulationResult rf = RunPolicy(&foodmatch);
  EXPECT_EQ(rf.metrics.orders_delivered + rf.metrics.orders_rejected,
            rf.metrics.orders_total);
  EXPECT_LT(rf.metrics.total_wait_seconds,
            0.8 * rg.metrics.total_wait_seconds);
  EXPECT_GT(rf.metrics.OrdersPerKm(), rg.metrics.OrdersPerKm());
}

TEST_F(IntegrationTest, FoodMatchBatchesMoreThanKM) {
  // O/Km should not degrade when batching is enabled.
  MatchingPolicy km(oracle_.get(), config_, MatchingPolicyOptions::VanillaKM());
  MatchingPolicy foodmatch(oracle_.get(), config_,
                           MatchingPolicyOptions::FoodMatch());
  const SimulationResult rk = RunPolicy(&km);
  const SimulationResult rf = RunPolicy(&foodmatch);
  EXPECT_GT(rf.metrics.OrdersPerKm(), rk.metrics.OrdersPerKm() * 0.9);
}

TEST_F(IntegrationTest, SparsificationReducesCostEvaluations) {
  MatchingPolicy full(oracle_.get(), config_,
                      MatchingPolicyOptions::BatchingAndReshuffle());
  // On this small instance the auto-derived k exceeds the batch count, so
  // pin k to make the sparsification bite (the paper's Fig. 8(h–k) sweeps
  // k explicitly the same way).
  MatchingPolicyOptions sparse_options =
      MatchingPolicyOptions::BatchingReshuffleBestFirst();
  sparse_options.fixed_k = 3;
  MatchingPolicy sparse(oracle_.get(), config_, sparse_options);
  const SimulationResult rfull = RunPolicy(&full);
  const SimulationResult rsparse = RunPolicy(&sparse);
  EXPECT_LT(rsparse.metrics.cost_evaluations, rfull.metrics.cost_evaluations);
}

TEST_F(IntegrationTest, HubLabelAndDijkstraOraclesAgreeEndToEnd) {
  // The entire simulation must be identical under both exact oracles.
  DistanceOracle dijkstra(&workload_.network, OracleBackend::kDijkstra);
  Config config = config_;
  MatchingPolicy p1(oracle_.get(), config, MatchingPolicyOptions::FoodMatch());
  MatchingPolicy p2(&dijkstra, config, MatchingPolicyOptions::FoodMatch());

  SimulationInput i1 = MakeInput(workload_, oracle_.get(), config);
  SimulationInput i2 = MakeInput(workload_, &dijkstra, config);
  Simulator s1(std::move(i1), &p1);
  Simulator s2(std::move(i2), &p2);
  const SimulationResult r1 = s1.Run();
  const SimulationResult r2 = s2.Run();
  EXPECT_EQ(r1.metrics.orders_delivered, r2.metrics.orders_delivered);
  EXPECT_NEAR(r1.metrics.total_xdt_seconds, r2.metrics.total_xdt_seconds, 1.0);
  EXPECT_NEAR(r1.metrics.total_wait_seconds, r2.metrics.total_wait_seconds,
              1.0);
}

TEST_F(IntegrationTest, FewerVehiclesMoreRejections) {
  MatchingPolicy foodmatch(oracle_.get(), config_,
                           MatchingPolicyOptions::FoodMatch());
  SimulationInput full_input = MakeInput(workload_, oracle_.get(), config_);
  SimulationInput tiny_input = MakeInput(workload_, oracle_.get(), config_);
  tiny_input.fleet = SubsampleFleet(workload_.fleet, 0.15);
  Simulator full_sim(std::move(full_input), &foodmatch);
  const SimulationResult full = full_sim.Run();
  Simulator tiny_sim(std::move(tiny_input), &foodmatch);
  const SimulationResult tiny = tiny_sim.Run();
  EXPECT_GE(tiny.metrics.orders_rejected, full.metrics.orders_rejected);
  EXPECT_LT(full.metrics.RejectionPercent(), 20.0);
}

TEST_F(IntegrationTest, DeterministicAcrossRuns) {
  MatchingPolicy foodmatch(oracle_.get(), config_,
                           MatchingPolicyOptions::FoodMatch());
  const SimulationResult a = RunPolicy(&foodmatch);
  const SimulationResult b = RunPolicy(&foodmatch);
  EXPECT_EQ(a.metrics.orders_delivered, b.metrics.orders_delivered);
  EXPECT_DOUBLE_EQ(a.metrics.total_xdt_seconds, b.metrics.total_xdt_seconds);
  EXPECT_DOUBLE_EQ(a.metrics.TotalDistanceKm(), b.metrics.TotalDistanceKm());
}

}  // namespace
}  // namespace fm
