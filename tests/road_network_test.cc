#include <array>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/road_network.h"
#include "tests/test_util.h"

namespace fm {
namespace {

TEST(RoadNetworkTest, BuilderCountsNodesAndEdges) {
  RoadNetwork::Builder builder;
  NodeId a = builder.AddNode({0, 0});
  NodeId b = builder.AddNode({0, 0.01});
  builder.AddEdgeConstant(a, b, 100.0, 10.0);
  RoadNetwork net = builder.Build();
  EXPECT_EQ(net.num_nodes(), 2u);
  EXPECT_EQ(net.num_edges(), 1u);
}

TEST(RoadNetworkTest, EdgeAccessors) {
  RoadNetwork::Builder builder;
  NodeId a = builder.AddNode({0, 0});
  NodeId b = builder.AddNode({0, 0.01});
  EdgeId e = builder.AddEdgeConstant(a, b, 123.0, 45.0);
  RoadNetwork net = builder.Build();
  EXPECT_EQ(net.edge_tail(e), a);
  EXPECT_EQ(net.edge_head(e), b);
  EXPECT_DOUBLE_EQ(net.edge_length(e), 123.0);
  for (int s = 0; s < kSlotsPerDay; ++s) {
    EXPECT_DOUBLE_EQ(net.EdgeTime(e, s), 45.0);
  }
}

TEST(RoadNetworkTest, SlotWeightsAreIndependent) {
  RoadNetwork::Builder builder;
  NodeId a = builder.AddNode({0, 0});
  NodeId b = builder.AddNode({0, 0.01});
  std::array<double, kSlotsPerDay> slots;
  for (int s = 0; s < kSlotsPerDay; ++s) slots[s] = 10.0 + s;
  EdgeId e = builder.AddEdge(a, b, 100.0, slots);
  RoadNetwork net = builder.Build();
  for (int s = 0; s < kSlotsPerDay; ++s) {
    EXPECT_DOUBLE_EQ(net.EdgeTime(e, s), 10.0 + s);
  }
  // EdgeTimeAt maps a time of day to its slot.
  EXPECT_DOUBLE_EQ(net.EdgeTimeAt(e, 2 * 3600.0 + 5.0), 12.0);
}

TEST(RoadNetworkTest, MaxEdgeTimePerSlot) {
  RoadNetwork::Builder builder;
  NodeId a = builder.AddNode({0, 0});
  NodeId b = builder.AddNode({0, 0.01});
  std::array<double, kSlotsPerDay> s1;
  s1.fill(10.0);
  s1[5] = 99.0;
  std::array<double, kSlotsPerDay> s2;
  s2.fill(50.0);
  builder.AddEdge(a, b, 100.0, s1);
  builder.AddEdge(b, a, 100.0, s2);
  RoadNetwork net = builder.Build();
  EXPECT_DOUBLE_EQ(net.MaxEdgeTime(0), 50.0);
  EXPECT_DOUBLE_EQ(net.MaxEdgeTime(5), 99.0);
}

TEST(RoadNetworkTest, OutAndInAdjacency) {
  RoadNetwork::Builder builder;
  NodeId a = builder.AddNode({0, 0});
  NodeId b = builder.AddNode({0, 0.01});
  NodeId c = builder.AddNode({0, 0.02});
  EdgeId ab = builder.AddEdgeConstant(a, b, 1, 1);
  EdgeId ac = builder.AddEdgeConstant(a, c, 1, 1);
  EdgeId cb = builder.AddEdgeConstant(c, b, 1, 1);
  RoadNetwork net = builder.Build();

  EXPECT_EQ(net.OutDegree(a), 2u);
  EXPECT_EQ(net.OutDegree(b), 0u);
  EXPECT_EQ(net.InDegree(b), 2u);
  EXPECT_EQ(net.InDegree(a), 0u);

  bool saw_ab = false;
  bool saw_ac = false;
  for (EdgeId e : net.OutEdges(a)) {
    saw_ab |= e == ab;
    saw_ac |= e == ac;
  }
  EXPECT_TRUE(saw_ab && saw_ac);

  bool saw_cb = false;
  for (EdgeId e : net.InEdges(b)) saw_cb |= e == cb;
  EXPECT_TRUE(saw_cb);
}

TEST(RoadNetworkTest, AdjacencyConsistentOnRandomGraph) {
  Rng rng(77);
  RoadNetwork net = testing::RandomConnectedNetwork(rng, 60, 150);
  // Every edge appears exactly once in its tail's out-list and once in its
  // head's in-list.
  std::size_t out_total = 0;
  std::size_t in_total = 0;
  for (NodeId u = 0; u < net.num_nodes(); ++u) {
    for (EdgeId e : net.OutEdges(u)) {
      EXPECT_EQ(net.edge_tail(e), u);
      ++out_total;
    }
    for (EdgeId e : net.InEdges(u)) {
      EXPECT_EQ(net.edge_head(e), u);
      ++in_total;
    }
  }
  EXPECT_EQ(out_total, net.num_edges());
  EXPECT_EQ(in_total, net.num_edges());
}

TEST(RoadNetworkTest, NodePositionsPreserved) {
  RoadNetwork::Builder builder;
  NodeId a = builder.AddNode({12.5, 77.25});
  RoadNetwork net = builder.Build();
  EXPECT_DOUBLE_EQ(net.node_position(a).lat_deg, 12.5);
  EXPECT_DOUBLE_EQ(net.node_position(a).lon_deg, 77.25);
}

}  // namespace
}  // namespace fm
