#include <gtest/gtest.h>

#include "sim/metrics.h"

namespace fm {
namespace {

TEST(MetricsTest, EmptyMetricsAreZero) {
  Metrics m;
  EXPECT_DOUBLE_EQ(m.OrdersPerKm(), 0.0);
  EXPECT_DOUBLE_EQ(m.TotalDistanceKm(), 0.0);
  EXPECT_DOUBLE_EQ(m.MeanXdtSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(m.MeanDeliverySeconds(), 0.0);
  EXPECT_DOUBLE_EQ(m.RejectionPercent(), 0.0);
  EXPECT_DOUBLE_EQ(m.OverflowPercent(), 0.0);
  EXPECT_DOUBLE_EQ(m.MeanDecisionSeconds(), 0.0);
}

TEST(MetricsTest, PaperOrdersPerKmExample) {
  // §V-B worked example: v2 travels 6 km empty, 5 km with one order, 8 km
  // with two, 5 km with one → (0·6 + 1·5 + 2·8 + 1·5) / 24 = 1.083.
  Metrics m;
  m.distance_by_load_m[0] = 6000.0;
  m.distance_by_load_m[1] = 5000.0 + 5000.0;
  m.distance_by_load_m[2] = 8000.0;
  EXPECT_NEAR(m.OrdersPerKm(), 1.083, 0.001);
  EXPECT_DOUBLE_EQ(m.TotalDistanceKm(), 24.0);
}

TEST(MetricsTest, XdtAndWaitHourConversions) {
  Metrics m;
  m.total_xdt_seconds = 7200.0;
  m.total_wait_seconds = 1800.0;
  EXPECT_DOUBLE_EQ(m.XdtHours(), 2.0);
  EXPECT_DOUBLE_EQ(m.WaitHours(), 0.5);
}

TEST(MetricsTest, MeansOverDelivered) {
  Metrics m;
  m.orders_delivered = 4;
  m.total_xdt_seconds = 400.0;
  m.total_delivery_seconds = 4000.0;
  EXPECT_DOUBLE_EQ(m.MeanXdtSeconds(), 100.0);
  EXPECT_DOUBLE_EQ(m.MeanDeliverySeconds(), 1000.0);
}

TEST(MetricsTest, RejectionAndOverflowPercents) {
  Metrics m;
  m.orders_total = 200;
  m.orders_rejected = 30;
  m.windows = 50;
  m.overflown_windows = 5;
  EXPECT_DOUBLE_EQ(m.RejectionPercent(), 15.0);
  EXPECT_DOUBLE_EQ(m.OverflowPercent(), 10.0);
}

TEST(MetricsTest, SlotOrdersPerKm) {
  Metrics m;
  m.per_slot[12].distance_m = 1000.0;
  m.per_slot[12].load_distance_m = 1500.0;
  EXPECT_DOUBLE_EQ(m.SlotOrdersPerKm(12), 1.5);
  EXPECT_DOUBLE_EQ(m.SlotOrdersPerKm(13), 0.0);
}

TEST(MetricsTest, LoadBucketClampUsedConsistently) {
  // Loads above kMaxLoadBucket still count toward the weighted sum with the
  // clamped factor; formula stays finite.
  Metrics m;
  m.distance_by_load_m[Metrics::kMaxLoadBucket] = 1000.0;
  EXPECT_DOUBLE_EQ(m.OrdersPerKm(), Metrics::kMaxLoadBucket);
}

TEST(MetricsTest, SummaryMentionsKeyQuantities) {
  Metrics m;
  m.orders_total = 10;
  m.orders_delivered = 9;
  m.orders_rejected = 1;
  m.total_xdt_seconds = 3600.0;
  const std::string s = m.Summary();
  EXPECT_NE(s.find("orders=10"), std::string::npos);
  EXPECT_NE(s.find("delivered=9"), std::string::npos);
  EXPECT_NE(s.find("rejected=1"), std::string::npos);
  EXPECT_NE(s.find("XDT=1.0h"), std::string::npos);
}

}  // namespace
}  // namespace fm
