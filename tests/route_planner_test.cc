#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/distance_oracle.h"
#include "routing/route_plan.h"
#include "routing/route_planner.h"
#include "tests/test_util.h"

namespace fm {
namespace {

Order MakeOrder(OrderId id, NodeId r, NodeId c, Seconds placed, Seconds prep,
                int items = 1) {
  Order o;
  o.id = id;
  o.restaurant = r;
  o.customer = c;
  o.placed_at = placed;
  o.prep_time = prep;
  o.items = items;
  return o;
}

class RoutePlannerTest : public ::testing::Test {
 protected:
  RoutePlannerTest()
      : net_(testing::LineNetwork(20, 60.0)),
        oracle_(&net_, OracleBackend::kDijkstra) {}

  RoadNetwork net_;
  DistanceOracle oracle_;
};

// ---------- plan validity ----------

TEST(RoutePlanTest, ValidityChecks) {
  Order a = MakeOrder(1, 2, 5, 0, 0);
  Order b = MakeOrder(2, 3, 6, 0, 0);

  RoutePlan good;
  good.stops = {{2, 1, StopType::kPickup},
                {3, 2, StopType::kPickup},
                {5, 1, StopType::kDropoff},
                {6, 2, StopType::kDropoff}};
  EXPECT_TRUE(IsValidPlan(good, {}, {a, b}));

  RoutePlan drop_before_pick;
  drop_before_pick.stops = {{5, 1, StopType::kDropoff},
                            {2, 1, StopType::kPickup}};
  EXPECT_FALSE(IsValidPlan(drop_before_pick, {}, {a}));

  RoutePlan missing_drop;
  missing_drop.stops = {{2, 1, StopType::kPickup}};
  EXPECT_FALSE(IsValidPlan(missing_drop, {}, {a}));

  // Onboard orders need only a drop.
  RoutePlan drop_only;
  drop_only.stops = {{5, 1, StopType::kDropoff}};
  EXPECT_TRUE(IsValidPlan(drop_only, {a}, {}));
  EXPECT_FALSE(IsValidPlan(drop_only, {}, {a}));
}

TEST(RoutePlanTest, ToStringFormat) {
  RoutePlan plan;
  plan.stops = {{2, 1, StopType::kPickup}, {5, 1, StopType::kDropoff}};
  EXPECT_EQ(plan.ToString(), "P1@2 D1@5");
}

// ---------- single-order semantics (Eq. 2) ----------

TEST_F(RoutePlannerTest, SingleOrderMatchesEq2) {
  // Vehicle at node 0; order from restaurant 5 to customer 8, prep 400 s.
  // first mile = 300 s < prep → wait 100 s; last mile = 180 s.
  Order o = MakeOrder(0, 5, 8, /*placed=*/1000.0, /*prep=*/400.0);
  PlanRequest req;
  req.start = 0;
  req.start_time = 1000.0;
  req.to_pick = {o};
  const PlanResult r = PlanOptimalRoute(oracle_, req);
  ASSERT_TRUE(r.feasible);
  // EDT = max(first mile, prep) + last mile = 400 + 180 = 580 after placed.
  EXPECT_DOUBLE_EQ(r.completion_time, 1000.0 + 580.0);
  // SDT = 400 + 180 = 580 → XDT = 0 (vehicle waits exactly prep).
  EXPECT_NEAR(r.cost, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.wait_time, 100.0);
  ASSERT_EQ(r.plan.stops.size(), 2u);
  EXPECT_EQ(r.plan.stops[0].type, StopType::kPickup);
  EXPECT_EQ(r.plan.stops[1].type, StopType::kDropoff);
}

TEST_F(RoutePlannerTest, SingleOrderFirstMileDominatesPrep) {
  // Vehicle far away: first mile 600 s > prep 100 s → no wait, XDT > 0
  // because the vehicle was not already at the restaurant.
  Order o = MakeOrder(0, 10, 12, 0.0, 100.0);
  PlanRequest req;
  req.start = 0;
  req.start_time = 0.0;
  req.to_pick = {o};
  const PlanResult r = PlanOptimalRoute(oracle_, req);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.wait_time, 0.0);
  // EDT = 600 + 120 = 720; SDT = 100 + 120 = 220 → XDT = 500.
  EXPECT_DOUBLE_EQ(r.cost, 500.0);
}

TEST_F(RoutePlannerTest, EmptyRequestIsTrivial) {
  PlanRequest req;
  req.start = 3;
  req.start_time = 50.0;
  const PlanResult r = PlanOptimalRoute(oracle_, req);
  EXPECT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.cost, 0.0);
  EXPECT_TRUE(r.plan.stops.empty());
  EXPECT_DOUBLE_EQ(r.completion_time, 50.0);
}

TEST_F(RoutePlannerTest, OnboardOnlyDropsInBestOrder) {
  // Two onboard orders with customers on either side; the plan should visit
  // the near one first when that minimizes summed arrival times.
  Order a = MakeOrder(0, 0, 6, 0.0, 0.0);
  Order b = MakeOrder(1, 0, 2, 0.0, 0.0);
  PlanRequest req;
  req.start = 1;
  req.start_time = 0.0;
  req.onboard = {a, b};
  const PlanResult r = PlanOptimalRoute(oracle_, req);
  ASSERT_TRUE(r.feasible);
  ASSERT_EQ(r.plan.stops.size(), 2u);
  EXPECT_EQ(r.plan.stops[0].order, 1u);  // drop near customer (node 2) first
  EXPECT_EQ(r.plan.stops[1].order, 0u);
}

TEST_F(RoutePlannerTest, BatchedPairSharesTravel) {
  // Two orders from the same restaurant, customers along the same way.
  Order a = MakeOrder(0, 3, 6, 0.0, 0.0);
  Order b = MakeOrder(1, 3, 9, 0.0, 0.0);
  PlanRequest req;
  req.start = 3;
  req.start_time = 0.0;
  req.to_pick = {a, b};
  const PlanResult r = PlanOptimalRoute(oracle_, req);
  ASSERT_TRUE(r.feasible);
  // Optimal: pick both at 3, drop at 6, then 9.
  ASSERT_EQ(r.plan.stops.size(), 4u);
  EXPECT_EQ(r.plan.stops[0].type, StopType::kPickup);
  EXPECT_EQ(r.plan.stops[1].type, StopType::kPickup);
  EXPECT_EQ(r.plan.stops[2].node, 6u);
  EXPECT_EQ(r.plan.stops[3].node, 9u);
  // a delivered at t=180 (3·60), XDT_a = 180-180 = 0;
  // b delivered at t=360, XDT_b = 360-360 = 0.
  EXPECT_NEAR(r.cost, 0.0, 1e-9);
}

TEST_F(RoutePlannerTest, FreeStartBeginsAtBestPickup) {
  Order a = MakeOrder(0, 4, 8, 0.0, 0.0);
  PlanRequest req;
  req.start = kInvalidNode;  // free start
  req.start_time = 0.0;
  req.to_pick = {a};
  const PlanResult r = PlanOptimalRoute(oracle_, req);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.plan.stops.front().node, 4u);
  EXPECT_NEAR(r.cost, 0.0, 1e-9);  // materializes at the restaurant
}

TEST_F(RoutePlannerTest, InfeasibleWhenUnreachable) {
  // One-way pair: node 1 cannot reach node 0.
  RoadNetwork::Builder builder;
  builder.AddNode({0, 0});
  builder.AddNode({0, 0.01});
  builder.AddEdgeConstant(0, 1, 100, 10);
  RoadNetwork net = builder.Build();
  DistanceOracle oracle(&net, OracleBackend::kDijkstra);
  Order o = MakeOrder(0, 1, 0, 0.0, 0.0);  // restaurant 1 → customer 0
  PlanRequest req;
  req.start = 0;
  req.start_time = 0.0;
  req.to_pick = {o};
  const PlanResult r = PlanOptimalRoute(oracle, req);
  EXPECT_FALSE(r.feasible);
  EXPECT_EQ(r.cost, kInfiniteTime);
}

TEST_F(RoutePlannerTest, EvaluatePlanTimeline) {
  Order o = MakeOrder(0, 2, 4, 0.0, 500.0);
  PlanRequest req;
  req.start = 0;
  req.start_time = 0.0;
  req.to_pick = {o};
  RoutePlan plan;
  plan.stops = {{2, 0, StopType::kPickup}, {4, 0, StopType::kDropoff}};
  const PlanResult r = EvaluatePlan(oracle_, req, plan);
  ASSERT_TRUE(r.feasible);
  ASSERT_EQ(r.arrival_times.size(), 2u);
  EXPECT_DOUBLE_EQ(r.arrival_times[0], 120.0);   // arrive restaurant
  EXPECT_DOUBLE_EQ(r.departure_times[0], 500.0); // wait for prep
  EXPECT_DOUBLE_EQ(r.arrival_times[1], 620.0);   // drop
  EXPECT_DOUBLE_EQ(r.wait_time, 380.0);
}

// ---------- property: DFS planner == brute force ----------

class PlannerPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PlannerPropertyTest, OptimalMatchesBruteForce) {
  Rng rng(5000 + GetParam());
  RoadNetwork net =
      testing::RandomConnectedNetwork(rng, 25, 80, /*time_varying=*/true);
  DistanceOracle oracle(&net, OracleBackend::kDijkstra);
  for (int trial = 0; trial < 12; ++trial) {
    const int onboard_n = rng.UniformIntRange(0, 1);
    const int pick_n = rng.UniformIntRange(1, 3);
    PlanRequest req;
    req.start = static_cast<NodeId>(rng.UniformInt(net.num_nodes()));
    req.start_time = rng.UniformRange(0.0, kSecondsPerDay - 7200.0);
    OrderId next_id = 0;
    for (int i = 0; i < onboard_n; ++i) {
      req.onboard.push_back(MakeOrder(
          next_id++, static_cast<NodeId>(rng.UniformInt(net.num_nodes())),
          static_cast<NodeId>(rng.UniformInt(net.num_nodes())),
          req.start_time - rng.UniformRange(0.0, 600.0),
          rng.UniformRange(0.0, 600.0)));
    }
    for (int i = 0; i < pick_n; ++i) {
      req.to_pick.push_back(MakeOrder(
          next_id++, static_cast<NodeId>(rng.UniformInt(net.num_nodes())),
          static_cast<NodeId>(rng.UniformInt(net.num_nodes())),
          req.start_time - rng.UniformRange(0.0, 300.0),
          rng.UniformRange(0.0, 900.0)));
    }
    const PlanResult fast = PlanOptimalRoute(oracle, req);
    const PlanResult slow = PlanOptimalRouteBruteForce(oracle, req);
    ASSERT_EQ(fast.feasible, slow.feasible);
    if (fast.feasible) {
      EXPECT_NEAR(fast.cost, slow.cost, 1e-6) << "trial " << trial;
      EXPECT_TRUE(IsValidPlan(fast.plan, req.onboard, req.to_pick));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerPropertyTest, ::testing::Range(0, 6));

// ---------- marginal cost (Def. 9 / Eq. 7) ----------

TEST_F(RoutePlannerTest, MarginalCostOfFirstOrder) {
  VehicleSnapshot v;
  v.id = 0;
  v.location = 0;
  v.next_destination = 0;
  Order o = MakeOrder(0, 10, 12, 0.0, 100.0);
  // Cost(v, {o}) = 500 (see SingleOrderFirstMileDominatesPrep);
  // Cost(v, ∅) = 0 → mCost = 500.
  EXPECT_DOUBLE_EQ(MarginalCost(oracle_, v, 0.0, {o}), 500.0);
}

TEST_F(RoutePlannerTest, MarginalCostIsIncremental) {
  VehicleSnapshot v;
  v.id = 0;
  v.location = 0;
  v.next_destination = 0;
  Order first = MakeOrder(0, 2, 4, 0.0, 0.0);
  Order second = MakeOrder(1, 3, 5, 0.0, 0.0);

  const Seconds cost_first = MarginalCost(oracle_, v, 0.0, {first});
  v.unpicked = {first};
  const Seconds marginal_second = MarginalCost(oracle_, v, 0.0, {second});

  // Cost(v, {first, second}) must equal the sum of the two marginals.
  VehicleSnapshot empty;
  empty.id = 0;
  empty.location = 0;
  empty.next_destination = 0;
  const Seconds cost_both = MarginalCost(oracle_, empty, 0.0, {first, second});
  EXPECT_NEAR(cost_both, cost_first + marginal_second, 1e-9);
}

TEST_F(RoutePlannerTest, MarginalCostInfeasibleIsInfinite) {
  RoadNetwork::Builder builder;
  builder.AddNode({0, 0});
  builder.AddNode({0, 0.01});
  builder.AddEdgeConstant(0, 1, 100, 10);
  RoadNetwork net = builder.Build();
  DistanceOracle oracle(&net, OracleBackend::kDijkstra);
  VehicleSnapshot v;
  v.id = 0;
  v.location = 1;  // node 1 is a sink
  v.next_destination = 1;
  Order o = MakeOrder(0, 0, 1, 0.0, 0.0);
  EXPECT_EQ(MarginalCost(oracle, v, 0.0, {o}), kInfiniteTime);
}

}  // namespace
}  // namespace fm
