#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "graph/dijkstra.h"
#include "io/geojson.h"
#include "tests/test_util.h"

namespace fm {
namespace {

TEST(GeoJsonTest, NetworkExportHasOneFeaturePerRoad) {
  RoadNetwork net = testing::LineNetwork(4);  // 3 undirected roads
  const std::string geojson = NetworkToGeoJson(net);
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = geojson.find("\"LineString\"", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 3u);
  EXPECT_NE(geojson.find("\"FeatureCollection\""), std::string::npos);
  EXPECT_NE(geojson.find("\"seconds\""), std::string::npos);
}

TEST(GeoJsonTest, CoordinatesAreLonLat) {
  RoadNetwork::Builder builder;
  builder.AddNode({12.5, 77.25});
  builder.AddNode({12.6, 77.35});
  builder.AddEdgeConstant(0, 1, 100, 10);
  RoadNetwork net = builder.Build();
  const std::string geojson = NetworkToGeoJson(net);
  // lon first: 77.25 precedes 12.5 in the pair.
  EXPECT_NE(geojson.find("[77.250000,12.500000]"), std::string::npos);
}

TEST(GeoJsonTest, RouteExportContainsPathAndStops) {
  RoadNetwork net = testing::LineNetwork(8);
  auto path = ShortestPathNodes(net, 0, 5, 0);
  RoutePlan plan;
  plan.stops = {{2, 7, StopType::kPickup}, {5, 7, StopType::kDropoff}};
  const std::string geojson = RouteToGeoJson(net, path, plan);
  EXPECT_NE(geojson.find("\"route\""), std::string::npos);
  EXPECT_NE(geojson.find("\"pickup\""), std::string::npos);
  EXPECT_NE(geojson.find("\"dropoff\""), std::string::npos);
  EXPECT_NE(geojson.find("\"order\":7"), std::string::npos);
}

TEST(GeoJsonTest, WritesFile) {
  RoadNetwork net = testing::LineNetwork(3);
  const std::string path = ::testing::TempDir() + "/net.geojson";
  WriteGeoJsonFile(path, NetworkToGeoJson(net));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("FeatureCollection"), std::string::npos);
  std::remove(path.c_str());
}

TEST(GeoJsonTest, BalancedBracesAndBrackets) {
  RoadNetwork net = testing::LineNetwork(6);
  for (const std::string& geojson :
       {NetworkToGeoJson(net),
        RouteToGeoJson(net, {0, 1, 2}, RoutePlan{})}) {
    int braces = 0;
    int brackets = 0;
    for (char c : geojson) {
      if (c == '{') ++braces;
      if (c == '}') --braces;
      if (c == '[') ++brackets;
      if (c == ']') --brackets;
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
  }
}

}  // namespace
}  // namespace fm
