#include <gtest/gtest.h>

#include "common/flags.h"

namespace fm {
namespace {

FlagParser ParseArgs(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  FlagParser parser;
  EXPECT_TRUE(parser.Parse(static_cast<int>(args.size()), args.data()));
  return parser;
}

TEST(FlagsTest, EqualsSyntax) {
  FlagParser p = ParseArgs({"--city=B", "--scale=40.5"});
  EXPECT_EQ(p.GetString("city"), "B");
  EXPECT_DOUBLE_EQ(p.GetDouble("scale", 0), 40.5);
}

TEST(FlagsTest, SpaceSyntax) {
  FlagParser p = ParseArgs({"--policy", "greedy", "--k", "12"});
  EXPECT_EQ(p.GetString("policy"), "greedy");
  EXPECT_EQ(p.GetInt("k", 0), 12);
}

TEST(FlagsTest, BareBooleans) {
  FlagParser p = ParseArgs({"--quiet", "--verbose=false"});
  EXPECT_TRUE(p.GetBool("quiet"));
  EXPECT_FALSE(p.GetBool("verbose", true));
  EXPECT_FALSE(p.GetBool("absent", false));
  EXPECT_TRUE(p.GetBool("absent", true));
}

TEST(FlagsTest, Positionals) {
  FlagParser p = ParseArgs({"input.csv", "--k=3", "output.csv"});
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "input.csv");
  EXPECT_EQ(p.positional()[1], "output.csv");
}

TEST(FlagsTest, DoubleDashStopsParsing) {
  FlagParser p = ParseArgs({"--k=3", "--", "--not-a-flag"});
  EXPECT_EQ(p.GetInt("k", 0), 3);
  ASSERT_EQ(p.positional().size(), 1u);
  EXPECT_EQ(p.positional()[0], "--not-a-flag");
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  FlagParser p = ParseArgs({});
  EXPECT_EQ(p.GetString("city", "A"), "A");
  EXPECT_DOUBLE_EQ(p.GetDouble("scale", 80.0), 80.0);
  EXPECT_EQ(p.GetInt("k", 7), 7);
  EXPECT_FALSE(p.HasFlag("city"));
}

TEST(FlagsTest, LastValueWins) {
  FlagParser p = ParseArgs({"--k=1", "--k=2"});
  EXPECT_EQ(p.GetInt("k", 0), 2);
}

}  // namespace
}  // namespace fm
