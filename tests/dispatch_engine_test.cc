// DispatchEngine: event ordering, pool ageing and rejection, the reshuffle
// round-trip, the OrderDelivered/VehicleRetired retirement events (bounded
// resident state on rolling horizons), 1-vs-N-thread determinism, and the
// engine-equivalence gate asserting the engine/driver split reproduces the
// pre-refactor monolithic Simulator bit-for-bit (fingerprints captured from
// the seed path).
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <deque>

#include <gtest/gtest.h>

#include "core/dispatch_engine.h"
#include "core/greedy_policy.h"
#include "core/matching_policy.h"
#include "core/reyes_policy.h"
#include "gen/city_gen.h"
#include "graph/distance_oracle.h"
#include "sim/simulator.h"

namespace fm {
namespace {

Order MakeOrder(OrderId id, Seconds placed, int items = 1) {
  Order o;
  o.id = id;
  o.restaurant = 0;
  o.customer = 1;
  o.placed_at = placed;
  o.items = items;
  return o;
}

VehicleSnapshot MakeSnapshot(VehicleId id, NodeId at = 0) {
  VehicleSnapshot v;
  v.id = id;
  v.location = at;
  v.next_destination = at;
  return v;
}

// A policy whose decisions are scripted per window, recording every Assign
// call so tests can assert exactly what the engine showed it.
class ScriptedPolicy : public AssignmentPolicy {
 public:
  struct Call {
    std::vector<Order> pool;
    std::vector<VehicleSnapshot> vehicles;
    Seconds now = 0.0;
  };

  std::string name() const override { return "scripted"; }
  bool wants_reshuffle() const override { return reshuffle; }

  AssignmentDecision Assign(const std::vector<Order>& unassigned,
                            const std::vector<VehicleSnapshot>& vehicles,
                            Seconds now) override {
    calls.push_back({unassigned, vehicles, now});
    AssignmentDecision decision;
    if (!script.empty()) {
      decision = std::move(script.front());
      script.pop_front();
    }
    return decision;
  }

  bool reshuffle = false;
  std::deque<AssignmentDecision> script;
  std::vector<Call> calls;
};

AssignmentDecision AssignTo(VehicleId vehicle, std::vector<Order> orders) {
  AssignmentDecision d;
  d.assignments.push_back({std::move(orders), vehicle});
  return d;
}

Config TestConfig() {
  Config config;
  config.accumulation_window = 60.0;
  return config;
}

TEST(DispatchEngineTest, PoolPreservesEventOrderAndPolicySeesIt) {
  ScriptedPolicy policy;
  DispatchEngine engine(&policy, TestConfig());

  engine.Handle(OrderPlaced{MakeOrder(7, 10.0)});
  engine.Handle(OrderPlaced{MakeOrder(3, 20.0)});
  engine.Handle(OrderPlaced{MakeOrder(5, 30.0)});
  engine.Handle(VehicleStateUpdate{MakeSnapshot(0), true});

  ASSERT_EQ(engine.pool().size(), 3u);
  EXPECT_EQ(engine.pool()[0].id, 7u);
  EXPECT_EQ(engine.pool()[1].id, 3u);
  EXPECT_EQ(engine.pool()[2].id, 5u);

  engine.Handle(WindowClosed{60.0});
  ASSERT_EQ(policy.calls.size(), 1u);
  const ScriptedPolicy::Call& call = policy.calls[0];
  EXPECT_EQ(call.now, 60.0);
  ASSERT_EQ(call.pool.size(), 3u);
  EXPECT_EQ(call.pool[0].id, 7u);  // arrival order, not id order
  EXPECT_EQ(call.pool[1].id, 3u);
  EXPECT_EQ(call.pool[2].id, 5u);
  ASSERT_EQ(call.vehicles.size(), 1u);
  EXPECT_EQ(call.vehicles[0].id, 0u);
}

TEST(DispatchEngineTest, SnapshotsFollowAnnouncementOrderAndDutyFlag) {
  ScriptedPolicy policy;
  DispatchEngine engine(&policy, TestConfig());

  engine.Handle(VehicleStateUpdate{MakeSnapshot(9), true});
  engine.Handle(VehicleStateUpdate{MakeSnapshot(2), true});
  engine.Handle(VehicleStateUpdate{MakeSnapshot(4), /*on_duty=*/false});
  // Re-announcing an existing vehicle updates in place (no reordering).
  engine.Handle(VehicleStateUpdate{MakeSnapshot(9, 5), true});

  engine.Handle(WindowClosed{60.0});
  ASSERT_EQ(policy.calls.size(), 1u);
  const auto& vehicles = policy.calls[0].vehicles;
  ASSERT_EQ(vehicles.size(), 2u);  // off-duty vehicle 4 hidden
  EXPECT_EQ(vehicles[0].id, 9u);
  EXPECT_EQ(vehicles[0].location, 5u);  // the later update won
  EXPECT_EQ(vehicles[1].id, 2u);
}

TEST(DispatchEngineTest, AgeingRejectsOnlyNeverAssignedOrders) {
  Config config = TestConfig();
  config.max_unassigned_age = 1800.0;
  ScriptedPolicy policy;
  DispatchEngine engine(&policy, config);
  engine.Handle(VehicleStateUpdate{MakeSnapshot(0), true});

  engine.Handle(OrderPlaced{MakeOrder(0, 0.0)});
  engine.Handle(OrderPlaced{MakeOrder(1, 0.0)});

  // Assign order 0 early; order 1 stays in the pool.
  policy.script.push_back(AssignTo(0, {MakeOrder(0, 0.0)}));
  engine.Handle(WindowClosed{1000.0});
  EXPECT_TRUE(engine.ever_assigned(0));
  EXPECT_FALSE(engine.ever_assigned(1));
  ASSERT_EQ(engine.pool().size(), 1u);

  // Exactly at the limit: now - placed_at == max_unassigned_age is kept
  // (the rejection test is strictly greater).
  WindowResult at_limit = engine.Handle(WindowClosed{1800.0});
  EXPECT_TRUE(at_limit.rejected.empty());
  EXPECT_EQ(engine.pool().size(), 1u);

  // Past the limit: the never-assigned order is rejected and dropped.
  WindowResult over = engine.Handle(WindowClosed{1900.0});
  ASSERT_EQ(over.rejected.size(), 1u);
  EXPECT_EQ(over.rejected[0], 1u);
  EXPECT_TRUE(engine.pool().empty());
}

TEST(DispatchEngineTest, ReshuffledAllocatedOrderIsNeverRejected) {
  Config config = TestConfig();
  config.max_unassigned_age = 1800.0;
  ScriptedPolicy policy;
  policy.reshuffle = true;
  DispatchEngine engine(&policy, config);
  engine.Handle(VehicleStateUpdate{MakeSnapshot(0), true});

  engine.Handle(OrderPlaced{MakeOrder(0, 0.0)});
  policy.script.push_back(AssignTo(0, {MakeOrder(0, 0.0)}));
  engine.Handle(WindowClosed{60.0});
  EXPECT_TRUE(engine.pool().empty());

  // Keep the vehicle stuck with the order unpicked for hours: every window
  // strips it into the pool, but it is allocated, so it never ages out.
  VehicleSnapshot stuck = MakeSnapshot(0);
  stuck.unpicked.push_back(MakeOrder(0, 0.0));
  engine.Handle(VehicleStateUpdate{stuck, true});
  WindowResult late = engine.Handle(WindowClosed{4.0 * 3600.0});
  EXPECT_TRUE(late.rejected.empty());
  ASSERT_EQ(late.reshuffled_vehicles.size(), 1u);
  ASSERT_EQ(late.reinstatements.size(), 1u);
  EXPECT_EQ(late.reinstatements[0].order.id, 0u);
}

TEST(DispatchEngineTest, ReshuffleRoundTripReturnsUnmatchedToIncumbent) {
  ScriptedPolicy policy;
  policy.reshuffle = true;
  DispatchEngine engine(&policy, TestConfig());

  VehicleSnapshot incumbent = MakeSnapshot(0);
  incumbent.unpicked.push_back(MakeOrder(0, 10.0));
  engine.Handle(VehicleStateUpdate{incumbent, true});
  engine.Handle(VehicleStateUpdate{MakeSnapshot(1), true});

  // The policy leaves the stripped order unmatched.
  WindowResult result = engine.Handle(WindowClosed{60.0});

  // The strip was visible to the policy: snapshot 0's unpicked list empty,
  // the order in the pool.
  ASSERT_EQ(policy.calls.size(), 1u);
  EXPECT_TRUE(policy.calls[0].vehicles[0].unpicked.empty());
  ASSERT_EQ(policy.calls[0].pool.size(), 1u);
  EXPECT_EQ(policy.calls[0].pool[0].id, 0u);

  ASSERT_EQ(result.reshuffled_vehicles.size(), 1u);
  EXPECT_EQ(result.reshuffled_vehicles[0], 0u);
  ASSERT_EQ(result.reinstatements.size(), 1u);
  EXPECT_EQ(result.reinstatements[0].order.id, 0u);
  EXPECT_EQ(result.reinstatements[0].vehicle, 0u);
  EXPECT_TRUE(engine.pool().empty());
}

TEST(DispatchEngineTest, ReshuffleKeepsOrderInPoolWhenIncumbentIsFull) {
  Config config = TestConfig();
  config.max_orders_per_vehicle = 1;
  ScriptedPolicy policy;
  policy.reshuffle = true;
  DispatchEngine engine(&policy, config);

  VehicleSnapshot incumbent = MakeSnapshot(0);
  incumbent.unpicked.push_back(MakeOrder(0, 10.0));
  engine.Handle(VehicleStateUpdate{incumbent, true});
  engine.Handle(OrderPlaced{MakeOrder(1, 20.0)});

  // The matching hands the incumbent a NEW order, taking its only slot; the
  // stripped order must stay in the pool (still allocated, not rejected).
  policy.script.push_back(AssignTo(0, {MakeOrder(1, 20.0)}));
  WindowResult result = engine.Handle(WindowClosed{60.0});

  EXPECT_TRUE(result.reinstatements.empty());
  ASSERT_EQ(engine.pool().size(), 1u);
  EXPECT_EQ(engine.pool()[0].id, 0u);
  EXPECT_TRUE(engine.ever_assigned(0));
}

// ---- Retirement events: bounded state for long-running serving ----

TEST(DispatchEngineTest, OrderDeliveredPrunesEverAssignedAndRecordLists) {
  ScriptedPolicy policy;
  DispatchEngine engine(&policy, TestConfig());
  engine.Handle(VehicleStateUpdate{MakeSnapshot(0), true});
  engine.Handle(OrderPlaced{MakeOrder(0, 10.0)});
  policy.script.push_back(AssignTo(0, {MakeOrder(0, 10.0)}));
  engine.Handle(WindowClosed{60.0});
  EXPECT_TRUE(engine.ever_assigned(0));
  EXPECT_EQ(engine.ever_assigned_count(), 1u);

  engine.Handle(OrderDelivered{0, 0});
  EXPECT_FALSE(engine.ever_assigned(0));
  EXPECT_EQ(engine.ever_assigned_count(), 0u);
  // The record's unpicked list was pruned immediately: a reshuffle window
  // right after finds nothing to strip.
  policy.reshuffle = true;
  const WindowResult after = engine.Handle(WindowClosed{120.0});
  EXPECT_TRUE(after.reshuffled_vehicles.empty());
}

TEST(DispatchEngineTest, VehicleRetiredReturnsUnpickedAndRemovesRecord) {
  ScriptedPolicy policy;
  DispatchEngine engine(&policy, TestConfig());
  VehicleSnapshot loaded = MakeSnapshot(7);
  loaded.unpicked.push_back(MakeOrder(3, 10.0));
  engine.Handle(VehicleStateUpdate{loaded, true});
  engine.Handle(VehicleStateUpdate{MakeSnapshot(9), true});
  EXPECT_EQ(engine.vehicle_count(), 2u);

  engine.Handle(VehicleRetired{7});
  EXPECT_EQ(engine.vehicle_count(), 1u);
  // The not-yet-picked-up order returned to the pool, allocated (so it can
  // never age out), exactly like a reshuffle strip.
  ASSERT_EQ(engine.pending_orders(), 1u);
  EXPECT_EQ(engine.pool()[0].id, 3u);
  EXPECT_TRUE(engine.ever_assigned(3));
  engine.Handle(WindowClosed{60.0});
  ASSERT_EQ(policy.calls.size(), 1u);
  ASSERT_EQ(policy.calls[0].vehicles.size(), 1u);
  EXPECT_EQ(policy.calls[0].vehicles[0].id, 9u);
}

TEST(DispatchEngineTest, RetirementPreservesAnnouncementOrderAndIndices) {
  ScriptedPolicy policy;
  DispatchEngine engine(&policy, TestConfig());
  engine.Handle(VehicleStateUpdate{MakeSnapshot(2), true});
  engine.Handle(VehicleStateUpdate{MakeSnapshot(5), true});
  engine.Handle(VehicleStateUpdate{MakeSnapshot(8), true});
  engine.Handle(VehicleRetired{5});

  // Assignments to the shifted-down vehicle still resolve, and snapshots
  // keep announcement order minus the retiree.
  engine.Handle(OrderPlaced{MakeOrder(0, 0.0)});
  policy.script.push_back(AssignTo(8, {MakeOrder(0, 0.0)}));
  const WindowResult result = engine.Handle(WindowClosed{60.0});
  ASSERT_EQ(result.decision.assignments.size(), 1u);
  EXPECT_TRUE(engine.pool().empty());
  ASSERT_EQ(policy.calls[0].vehicles.size(), 2u);
  EXPECT_EQ(policy.calls[0].vehicles[0].id, 2u);
  EXPECT_EQ(policy.calls[0].vehicles[1].id, 8u);

  // A retired vehicle that comes back is a fresh announcement, at the end.
  engine.Handle(VehicleStateUpdate{MakeSnapshot(5), true});
  engine.Handle(WindowClosed{120.0});
  ASSERT_EQ(policy.calls[1].vehicles.size(), 3u);
  EXPECT_EQ(policy.calls[1].vehicles[2].id, 5u);
}

TEST(DispatchEngineTest, RollingHorizonWithRetirementEventsStaysBounded) {
  ScriptedPolicy policy;
  DispatchEngine engine(&policy, TestConfig());
  engine.Handle(VehicleStateUpdate{MakeSnapshot(0), true});

  // A rolling service: every window takes in a fresh batch, assigns it,
  // delivers it, and retires it via OrderDelivered. Total processed orders
  // grow unboundedly; resident engine state must not.
  constexpr int kWindows = 200;
  constexpr int kPerWindow = 3;  // == Config::max_orders_per_vehicle
  OrderId next_id = 0;
  std::size_t max_pool = 0;
  std::size_t max_ever = 0;
  for (int w = 1; w <= kWindows; ++w) {
    const Seconds now = 60.0 * w;
    std::vector<Order> batch;
    for (int i = 0; i < kPerWindow; ++i) {
      batch.push_back(MakeOrder(next_id++, now - 30.0));
      engine.Handle(OrderPlaced{batch.back()});
    }
    policy.script.push_back(AssignTo(0, batch));
    const WindowResult result = engine.Handle(WindowClosed{now});
    ASSERT_EQ(result.decision.assignments.size(), 1u);
    for (const Order& o : batch) engine.Handle(OrderDelivered{o.id, 0});
    engine.Handle(VehicleStateUpdate{MakeSnapshot(0), true});
    max_pool = std::max(max_pool, engine.pending_orders());
    max_ever = std::max(max_ever, engine.ever_assigned_count());
  }

  EXPECT_EQ(next_id, static_cast<OrderId>(kWindows * kPerWindow));
  EXPECT_EQ(engine.pending_orders(), 0u);
  EXPECT_EQ(engine.ever_assigned_count(), 0u);
  EXPECT_EQ(engine.vehicle_count(), 1u);
  EXPECT_LE(max_pool, static_cast<std::size_t>(kPerWindow));
  EXPECT_LE(max_ever, static_cast<std::size_t>(kPerWindow));
}

TEST(DispatchEngineTest, ObserverSeesPoolBeforeAssignmentsAreApplied) {
  ScriptedPolicy policy;
  DispatchEngine engine(&policy, TestConfig());
  engine.Handle(VehicleStateUpdate{MakeSnapshot(0), true});
  engine.Handle(OrderPlaced{MakeOrder(0, 10.0)});
  policy.script.push_back(AssignTo(0, {MakeOrder(0, 10.0)}));

  std::size_t observed_pool = 0;
  std::size_t observed_assignments = 0;
  engine.set_observer([&](const WindowView& view) {
    observed_pool = view.pool->size();
    observed_assignments = view.decision->assignments.size();
  });
  engine.Handle(WindowClosed{60.0});
  EXPECT_EQ(observed_pool, 1u);  // still in the pool at observation time
  EXPECT_EQ(observed_assignments, 1u);
  EXPECT_TRUE(engine.pool().empty());  // applied after the observer ran
}

TEST(DispatchEngineTest, MeasureWallClockOffReportsZeroDecisionSeconds) {
  ScriptedPolicy policy;
  DispatchEngine engine(&policy, TestConfig(),
                        DispatchEngineOptions{.measure_wall_clock = false});
  engine.Handle(VehicleStateUpdate{MakeSnapshot(0), true});
  const WindowResult result = engine.Handle(WindowClosed{60.0});
  EXPECT_EQ(result.decision_seconds, 0.0);
}

// ---- Position pings and retirement under churn (stress-stream events) ----

TEST(DispatchEngineTest, BarePingPreservesInFlightListsUntilRetirement) {
  ScriptedPolicy policy;
  DispatchEngine engine(&policy, TestConfig());
  engine.Handle(VehicleStateUpdate{MakeSnapshot(7), true});
  engine.Handle(OrderPlaced{MakeOrder(0, 10.0)});
  policy.script.push_back(AssignTo(7, {MakeOrder(0, 10.0)}));
  engine.Handle(WindowClosed{60.0});
  EXPECT_TRUE(engine.VehicleHasInFlight(7));

  // A gateway-style position ping carries no lists; the engine's own
  // picked/unpicked bookkeeping must survive it, with the new position
  // adopted.
  engine.Handle(VehicleStateUpdate{MakeSnapshot(7, /*at=*/1), true});
  EXPECT_TRUE(engine.VehicleHasInFlight(7));
  engine.Handle(WindowClosed{120.0});
  ASSERT_EQ(policy.calls.size(), 2u);
  ASSERT_EQ(policy.calls[1].vehicles.size(), 1u);
  const VehicleSnapshot& seen = policy.calls[1].vehicles[0];
  EXPECT_EQ(seen.location, 1u);
  ASSERT_EQ(seen.unpicked.size(), 1u);
  EXPECT_EQ(seen.unpicked[0].id, 0u);

  // Retirement after the ping still returns the preserved unpicked order.
  engine.Handle(VehicleRetired{7});
  EXPECT_FALSE(engine.VehicleHasInFlight(7));
  ASSERT_EQ(engine.pending_orders(), 1u);
  EXPECT_EQ(engine.pool()[0].id, 0u);
  EXPECT_TRUE(engine.ever_assigned(0));
}

TEST(DispatchEngineTest, MidShiftRetirementSplitsPickedFromUnpicked) {
  ScriptedPolicy policy;
  DispatchEngine engine(&policy, TestConfig());
  // A vehicle mid-shift: order 1 on board, order 2 accepted but not yet
  // picked up (announced by a full-state driver update).
  VehicleSnapshot loaded = MakeSnapshot(3);
  loaded.picked.push_back(MakeOrder(1, 5.0));
  loaded.unpicked.push_back(MakeOrder(2, 8.0));
  engine.Handle(VehicleStateUpdate{loaded, true});
  EXPECT_TRUE(engine.VehicleHasInFlight(3));

  // Retiring mid-shift: the on-board order leaves with the vehicle, only
  // the unpicked one returns to the pool (allocated, so never rejected).
  engine.Handle(VehicleRetired{3});
  EXPECT_EQ(engine.vehicle_count(), 0u);
  ASSERT_EQ(engine.pending_orders(), 1u);
  EXPECT_EQ(engine.pool()[0].id, 2u);
  EXPECT_TRUE(engine.ever_assigned(2));
  EXPECT_FALSE(engine.ever_assigned(1));
}

TEST(DispatchEngineTest, ShiftChurnWithIdReuseKeepsStateBounded) {
  ScriptedPolicy policy;
  DispatchEngine engine(&policy, TestConfig());
  // Shift-change churn as stress_gen emits it with reuse_ids: the same
  // vehicle id cycles announce → assign → ping → retire, every cycle
  // leaving one unpicked order behind. Resident state must track the
  // (bounded) in-flight load, not the (unbounded) shift count.
  constexpr int kShifts = 50;
  OrderId next_id = 0;
  for (int shift = 0; shift < kShifts; ++shift) {
    const Seconds base = 600.0 * shift;
    // Re-announcement of a reused id is a fresh vehicle: no lists carried
    // over from the previous shift's record.
    engine.Handle(VehicleStateUpdate{MakeSnapshot(4), true});
    EXPECT_FALSE(engine.VehicleHasInFlight(4));
    EXPECT_EQ(engine.vehicle_count(), 1u);

    const OrderId delivered_id = next_id++;
    const OrderId stranded_id = next_id++;
    engine.Handle(OrderPlaced{MakeOrder(delivered_id, base + 10.0)});
    engine.Handle(OrderPlaced{MakeOrder(stranded_id, base + 20.0)});
    policy.script.push_back(AssignTo(4, {MakeOrder(delivered_id, base + 10.0),
                                         MakeOrder(stranded_id, base + 20.0)}));
    engine.Handle(WindowClosed{base + 60.0});
    engine.Handle(VehicleStateUpdate{MakeSnapshot(4, /*at=*/1), true});
    EXPECT_TRUE(engine.VehicleHasInFlight(4));
    engine.Handle(OrderDelivered{delivered_id, 4});

    engine.Handle(VehicleRetired{4});
    EXPECT_EQ(engine.vehicle_count(), 0u);
    // Exactly the stranded order came back; next window hands it to the
    // next shift's vehicle so the pool drains before the cycle repeats.
    ASSERT_EQ(engine.pending_orders(), 1u);
    EXPECT_EQ(engine.pool()[0].id, stranded_id);
    engine.Handle(VehicleStateUpdate{MakeSnapshot(4), true});
    policy.script.push_back(AssignTo(4, {MakeOrder(stranded_id, base + 20.0)}));
    engine.Handle(WindowClosed{base + 120.0});
    engine.Handle(OrderDelivered{stranded_id, 4});
    engine.Handle(VehicleRetired{4});
    EXPECT_EQ(engine.pending_orders(), 0u);
    EXPECT_EQ(engine.ever_assigned_count(), 0u);
  }
  EXPECT_EQ(next_id, static_cast<OrderId>(2 * kShifts));
  EXPECT_EQ(engine.vehicle_count(), 0u);
}

// ---- Determinism and the engine-equivalence gate ----

struct Scenario {
  RoadNetwork network;
  std::vector<Vehicle> fleet;
  std::vector<Order> orders;
};

Scenario MakeScenario(std::uint64_t seed, int num_vehicles, int num_orders,
                      Seconds horizon) {
  Rng rng(seed);
  CityGenParams params;
  params.grid_width = 12;
  params.grid_height = 12;
  params.congestion = UrbanCongestion(1.8);
  Scenario s;
  s.network = GenerateGridCity(params, rng);
  for (int i = 0; i < num_vehicles; ++i) {
    Vehicle v;
    v.id = static_cast<VehicleId>(i);
    v.start_node = static_cast<NodeId>(rng.UniformInt(s.network.num_nodes()));
    s.fleet.push_back(v);
  }
  for (int i = 0; i < num_orders; ++i) {
    Order o;
    o.restaurant = static_cast<NodeId>(rng.UniformInt(s.network.num_nodes()));
    o.customer = static_cast<NodeId>(rng.UniformInt(s.network.num_nodes()));
    o.placed_at = 12 * 3600.0 + rng.UniformRange(0.0, horizon);
    o.prep_time = rng.UniformRange(120.0, 1200.0);
    o.items = rng.UniformIntRange(1, 4);
    s.orders.push_back(o);
  }
  std::sort(s.orders.begin(), s.orders.end(),
            [](const Order& a, const Order& b) {
              return a.placed_at < b.placed_at;
            });
  for (std::size_t i = 0; i < s.orders.size(); ++i) {
    s.orders[i].id = static_cast<OrderId>(i);
  }
  return s;
}

std::uint64_t HashBytes(std::uint64_t h, const void* data, std::size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t HashU64(std::uint64_t h, std::uint64_t v) {
  return HashBytes(h, &v, sizeof(v));
}

std::uint64_t HashDouble(std::uint64_t h, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return HashU64(h, bits);
}

// Bitwise fingerprint of everything deterministic in a SimulationResult.
// Must stay in sync with the capture harness that produced the golden
// constants below.
std::uint64_t Fingerprint(const SimulationResult& r) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  const Metrics& m = r.metrics;
  h = HashU64(h, m.orders_total);
  h = HashU64(h, m.orders_delivered);
  h = HashU64(h, m.orders_rejected);
  h = HashU64(h, m.orders_pending_at_end);
  h = HashDouble(h, m.total_xdt_seconds);
  h = HashDouble(h, m.total_delivery_seconds);
  h = HashDouble(h, m.total_wait_seconds);
  for (double d : m.distance_by_load_m) h = HashDouble(h, d);
  h = HashU64(h, m.windows);
  h = HashU64(h, m.cost_evaluations);
  for (const SlotMetrics& s : m.per_slot) {
    h = HashU64(h, s.orders_placed);
    h = HashU64(h, s.orders_delivered);
    h = HashDouble(h, s.xdt_seconds);
    h = HashDouble(h, s.wait_seconds);
    h = HashDouble(h, s.distance_m);
    h = HashDouble(h, s.load_distance_m);
    h = HashU64(h, s.windows);
  }
  for (const OrderOutcome& o : r.outcomes) {
    h = HashU64(h, static_cast<std::uint64_t>(o.state));
    h = HashU64(h, o.id);
    h = HashU64(h, o.vehicle);
    h = HashDouble(h, o.delivered_at);
    h = HashDouble(h, o.xdt);
    h = HashU64(h, static_cast<std::uint64_t>(o.times_assigned));
  }
  return h;
}

std::uint64_t RunFingerprint(const Scenario& s, const DistanceOracle& oracle,
                             AssignmentPolicy* policy, const Config& config) {
  SimulationInput input;
  input.network = &s.network;
  input.oracle = &oracle;
  input.config = config;
  input.fleet = s.fleet;
  input.orders = s.orders;
  input.start_time = 12 * 3600.0;
  input.end_time = 13 * 3600.0;
  input.drain_time = 7200.0;
  input.measure_wall_clock = false;
  Simulator sim(std::move(input), policy);
  return Fingerprint(sim.Run());
}

class EngineEquivalenceTest : public ::testing::Test {
 protected:
  EngineEquivalenceTest()
      : scenario_(MakeScenario(7777, 6, 60, 3600.0)),
        oracle_(&scenario_.network, OracleBackend::kDijkstra) {}

  Config ConfigWithThreads(int threads) {
    Config config;
    config.accumulation_window = 90.0;
    config.threads = threads;
    return config;
  }

  Scenario scenario_;
  DistanceOracle oracle_;
};

// Golden fingerprints captured from the pre-refactor monolithic
// Simulator::Run (commit b319db6, before the DispatchEngine split) on the
// exact scenario above. The refactored engine/driver path must reproduce
// the seed path's SimulationResult bit-for-bit — every metric accumulator,
// per-slot bucket, and per-order outcome — at 1 and N threads.
constexpr std::uint64_t kGoldenFoodMatch = 0x26a143c51e16d12aull;
constexpr std::uint64_t kGoldenGreedy = 0xd543f5fb2b531d57ull;
constexpr std::uint64_t kGoldenKM = 0x9f48a05412a5fe5eull;
constexpr std::uint64_t kGoldenReyes = 0x97b2e2a84ff4939full;

TEST_F(EngineEquivalenceTest, FoodMatchMatchesSeedPathAt1AndNThreads) {
  // The golden must hold with the incremental FOODGRAPH maintenance both off
  // (the seed path's from-scratch build) and on (the EdgeCache path must be
  // bit-identical to it), at 1 and N threads.
  for (bool incremental : {false, true}) {
    for (int threads : {1, 4}) {
      Config config = ConfigWithThreads(threads);
      config.incremental_graph = incremental;
      MatchingPolicy policy(&oracle_, config,
                            MatchingPolicyOptions::FoodMatch());
      EXPECT_EQ(RunFingerprint(scenario_, oracle_, &policy, config),
                kGoldenFoodMatch)
          << "threads=" << threads << " incremental=" << incremental;
    }
  }
}

TEST_F(EngineEquivalenceTest, BaselinePoliciesMatchSeedPath) {
  const Config config = ConfigWithThreads(1);
  GreedyPolicy greedy(&oracle_, config);
  EXPECT_EQ(RunFingerprint(scenario_, oracle_, &greedy, config),
            kGoldenGreedy);
  ReyesPolicy reyes(&scenario_.network, config);
  EXPECT_EQ(RunFingerprint(scenario_, oracle_, &reyes, config), kGoldenReyes);
  // KM exercises the full (quadratic) builder; gate it with the incremental
  // path both off and on as well.
  for (bool incremental : {false, true}) {
    Config km_config = config;
    km_config.incremental_graph = incremental;
    MatchingPolicy km(&oracle_, km_config, MatchingPolicyOptions::VanillaKM());
    EXPECT_EQ(RunFingerprint(scenario_, oracle_, &km, km_config), kGoldenKM)
        << "incremental=" << incremental;
  }
}

TEST(DispatchEngineDeterminismTest, WindowResultsIdenticalFor1AndNThreads) {
  // Drive the engine directly (no simulator) with an identical event stream
  // at 1 and 4 lanes; every WindowResult must match field-for-field.
  Scenario s = MakeScenario(4242, 5, 40, 1800.0);
  DistanceOracle oracle(&s.network, OracleBackend::kDijkstra);

  auto run = [&](int threads) {
    Config config;
    config.accumulation_window = 120.0;
    config.threads = threads;
    MatchingPolicy policy(&oracle, config,
                          MatchingPolicyOptions::FoodMatch());
    DispatchEngine engine(&policy, config,
                          DispatchEngineOptions{.measure_wall_clock = false});
    for (const Vehicle& v : s.fleet) {
      VehicleSnapshot snap;
      snap.id = v.id;
      snap.location = v.start_node;
      snap.next_destination = v.start_node;
      engine.Handle(VehicleStateUpdate{snap, true});
    }
    std::vector<WindowResult> results;
    std::size_t next = 0;
    for (Seconds now = 12 * 3600.0 + 120.0; now <= 12 * 3600.0 + 1800.0;
         now += 120.0) {
      while (next < s.orders.size() && s.orders[next].placed_at <= now) {
        engine.Handle(OrderPlaced{s.orders[next]});
        ++next;
      }
      results.push_back(engine.Handle(WindowClosed{now}));
    }
    return results;
  };

  const std::vector<WindowResult> serial = run(1);
  const std::vector<WindowResult> threaded = run(4);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t w = 0; w < serial.size(); ++w) {
    const WindowResult& a = serial[w];
    const WindowResult& b = threaded[w];
    EXPECT_EQ(a.rejected, b.rejected) << "window " << w;
    EXPECT_EQ(a.reshuffled_vehicles, b.reshuffled_vehicles) << "window " << w;
    ASSERT_EQ(a.decision.assignments.size(), b.decision.assignments.size())
        << "window " << w;
    for (std::size_t i = 0; i < a.decision.assignments.size(); ++i) {
      EXPECT_EQ(a.decision.assignments[i].vehicle,
                b.decision.assignments[i].vehicle);
      ASSERT_EQ(a.decision.assignments[i].orders.size(),
                b.decision.assignments[i].orders.size());
      for (std::size_t j = 0; j < a.decision.assignments[i].orders.size();
           ++j) {
        EXPECT_EQ(a.decision.assignments[i].orders[j],
                  b.decision.assignments[i].orders[j]);
      }
    }
    ASSERT_EQ(a.reinstatements.size(), b.reinstatements.size())
        << "window " << w;
    for (std::size_t i = 0; i < a.reinstatements.size(); ++i) {
      EXPECT_EQ(a.reinstatements[i].order, b.reinstatements[i].order);
      EXPECT_EQ(a.reinstatements[i].vehicle, b.reinstatements[i].vehicle);
    }
    EXPECT_EQ(a.decision.cost_evaluations, b.decision.cost_evaluations)
        << "window " << w;
  }
}

}  // namespace
}  // namespace fm
