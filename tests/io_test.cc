#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "io/csv.h"
#include "io/table_printer.h"

namespace fm {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(CsvTest, RoundTripSimple) {
  const std::string path = TempPath("simple.csv");
  {
    CsvWriter writer(path, {"a", "b", "c"});
    writer.WriteRow({"1", "2", "3"});
    writer.WriteRow({"x", "y", "z"});
  }
  auto rows = ReadCsv(path);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2", "3"}));
  EXPECT_EQ(rows[2], (std::vector<std::string>{"x", "y", "z"}));
  std::remove(path.c_str());
}

TEST(CsvTest, EscapesCommasAndQuotes) {
  const std::string path = TempPath("escaped.csv");
  {
    CsvWriter writer(path, {"field"});
    writer.WriteRow({"a,b"});
    writer.WriteRow({"say \"hi\""});
  }
  auto rows = ReadCsv(path);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[1][0], "a,b");
  EXPECT_EQ(rows[2][0], "say \"hi\"");
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileReturnsEmpty) {
  EXPECT_TRUE(ReadCsv("/nonexistent/path/foo.csv").empty());
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer", "22"});
  const std::string out = table.Render();
  // Header, underline, two rows.
  EXPECT_NE(out.find("name    value"), std::string::npos);
  EXPECT_NE(out.find("longer  22"), std::string::npos);
  EXPECT_NE(out.find("------"), std::string::npos);
}

TEST(TablePrinterTest, EmptyTableRendersHeader) {
  TablePrinter table({"only"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("only"), std::string::npos);
}

}  // namespace
}  // namespace fm
