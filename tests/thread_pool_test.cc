#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace fm {
namespace {

TEST(ThreadPoolTest, InlinePoolSpawnsNoWorkersAndRunsSerially) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<int> order;
  pool.RunShards(5, [&](int s) { order.push_back(s); });
  // The inline pool must run shards in ascending order on the calling
  // thread (no synchronization needed for `order`).
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ClampsNonPositiveThreadCounts) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool neg(-3);
  EXPECT_EQ(neg.num_threads(), 1);
}

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_EQ(ThreadPool::ResolveThreadCount(3), 3);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(1), 1);
  EXPECT_GE(ThreadPool::ResolveThreadCount(0), 1);   // hardware concurrency
  EXPECT_GE(ThreadPool::ResolveThreadCount(-1), 1);
}

TEST(ThreadPoolTest, AllShardsRunExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kShards = 64;
  std::vector<std::atomic<int>> runs(kShards);
  pool.RunShards(kShards, [&](int s) { runs[s].fetch_add(1); });
  for (int s = 0; s < kShards; ++s) EXPECT_EQ(runs[s].load(), 1);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossJobs) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    pool.RunShards(7, [&](int s) { sum.fetch_add(s); });
    EXPECT_EQ(sum.load(), 21);
  }
}

TEST(ThreadPoolTest, ZeroShardsIsANoOp) {
  ThreadPool pool(2);
  pool.RunShards(0, [&](int) { FAIL() << "no shard should run"; });
  ParallelFor(&pool, 0, [&](std::size_t) { FAIL(); });
}

TEST(ThreadPoolTest, NullPoolParallelForRunsInline) {
  std::vector<std::size_t> seen;
  ParallelFor(nullptr, 4, [&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(ThreadPoolTest, ParallelForCoversRangeForAnyThreadCount) {
  for (int threads : {1, 2, 3, 4, 9}) {
    ThreadPool pool(threads);
    constexpr std::size_t kN = 1001;
    std::vector<int> hits(kN, 0);
    ParallelFor(&pool, kN, [&](std::size_t i) { ++hits[i]; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
              static_cast<int>(kN))
        << "threads=" << threads;
    for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i], 1);
  }
}

TEST(ThreadPoolTest, ShardBoundariesAreContiguousAndThreadCountInvariant) {
  // The determinism contract: shard boundaries depend only on (n, shards).
  // Record each index's shard and check shards form contiguous ascending
  // blocks covering [0, n).
  ThreadPool pool(4);
  constexpr std::size_t kN = 37;
  std::vector<int> shard_of(kN, -1);
  ParallelForShards(&pool, kN,
                    [&](int shard, std::size_t begin, std::size_t end) {
                      EXPECT_LT(begin, end);
                      for (std::size_t i = begin; i < end; ++i) {
                        shard_of[i] = shard;
                      }
                    });
  for (std::size_t i = 1; i < kN; ++i) {
    EXPECT_GE(shard_of[i], shard_of[i - 1]);
    EXPECT_LE(shard_of[i], shard_of[i - 1] + 1);
  }
  EXPECT_EQ(shard_of.front(), 0);
  EXPECT_EQ(shard_of.back(), ShardCount(&pool, kN) - 1);
}

TEST(ThreadPoolTest, ShardCountNeverExceedsRangeOrLanes) {
  ThreadPool pool(8);
  EXPECT_EQ(ShardCount(&pool, 3), 3);   // tiny range: one shard per element
  EXPECT_EQ(ShardCount(&pool, 100), 8);  // large range: one shard per lane
  EXPECT_EQ(ShardCount(&pool, 0), 0);
  EXPECT_EQ(ShardCount(nullptr, 100), 1);
}

TEST(ThreadPoolTest, PerShardAccumulatorsReduceDeterministically) {
  // The reduction pattern every parallel call site uses: per-shard partial
  // sums combined in shard order must equal the serial total bit-for-bit.
  constexpr std::size_t kN = 500;
  auto value = [](std::size_t i) { return 1.0 / (1.0 + static_cast<double>(i)); };

  auto run = [&](int threads) {
    ThreadPool pool(threads);
    const int shards = ShardCount(&pool, kN);
    std::vector<double> partial(static_cast<std::size_t>(shards), 0.0);
    ParallelForShards(&pool, kN,
                      [&](int shard, std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i) {
                          partial[static_cast<std::size_t>(shard)] += value(i);
                        }
                      });
    double total = 0.0;
    for (double p : partial) total += p;
    return total;
  };

  const double serial = run(1);
  for (int threads : {2, 4, 7}) {
    // Same shard count → identical partials → identical reduction. Different
    // shard counts give different (valid) roundings, so we compare equal
    // lane counts across repeated runs instead of mixing counts here.
    EXPECT_EQ(run(threads), run(threads)) << "threads=" << threads;
  }
  // And every configuration agrees to double precision tolerance.
  for (int threads : {2, 4}) {
    EXPECT_NEAR(run(threads), serial, 1e-12);
  }
}

}  // namespace
}  // namespace fm
