#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/dijkstra.h"
#include "tests/test_util.h"

namespace fm {
namespace {

TEST(DijkstraTest, LineNetworkDistances) {
  RoadNetwork net = testing::LineNetwork(5, 60.0);
  EXPECT_DOUBLE_EQ(PointToPointTime(net, 0, 4, 0), 240.0);
  EXPECT_DOUBLE_EQ(PointToPointTime(net, 4, 0, 0), 240.0);
  EXPECT_DOUBLE_EQ(PointToPointTime(net, 2, 2, 0), 0.0);
}

TEST(DijkstraTest, PicksCheaperOfTwoRoutes) {
  // 0 → 1 → 2 costs 20; direct 0 → 2 costs 50.
  RoadNetwork::Builder builder;
  for (int i = 0; i < 3; ++i) builder.AddNode({0, i * 0.01});
  builder.AddEdgeConstant(0, 1, 100, 10);
  builder.AddEdgeConstant(1, 2, 100, 10);
  builder.AddEdgeConstant(0, 2, 100, 50);
  RoadNetwork net = builder.Build();
  EXPECT_DOUBLE_EQ(PointToPointTime(net, 0, 2, 0), 20.0);
}

TEST(DijkstraTest, UnreachableIsInfinite) {
  RoadNetwork::Builder builder;
  builder.AddNode({0, 0});
  builder.AddNode({0, 0.01});
  builder.AddEdgeConstant(0, 1, 100, 10);  // no way back
  RoadNetwork net = builder.Build();
  EXPECT_EQ(PointToPointTime(net, 1, 0, 0), kInfiniteTime);
}

TEST(DijkstraTest, RespectsSlotWeights) {
  RoadNetwork::Builder builder;
  builder.AddNode({0, 0});
  builder.AddNode({0, 0.01});
  std::array<double, kSlotsPerDay> slots;
  for (int s = 0; s < kSlotsPerDay; ++s) slots[s] = 10.0 * (s + 1);
  builder.AddEdge(0, 1, 100, slots);
  RoadNetwork net = builder.Build();
  EXPECT_DOUBLE_EQ(PointToPointTime(net, 0, 1, 0), 10.0);
  EXPECT_DOUBLE_EQ(PointToPointTime(net, 0, 1, 11), 120.0);
}

TEST(DijkstraTest, SingleSourceMatchesPointToPoint) {
  Rng rng(123);
  RoadNetwork net = testing::RandomConnectedNetwork(rng, 40, 120);
  auto dist = SingleSourceTimes(net, 7, 3);
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    EXPECT_DOUBLE_EQ(dist[v], PointToPointTime(net, 7, v, 3));
  }
}

TEST(DijkstraTest, SingleDestinationMatchesPointToPoint) {
  Rng rng(124);
  RoadNetwork net = testing::RandomConnectedNetwork(rng, 40, 120);
  auto dist = SingleDestinationTimes(net, 9, 3);
  for (NodeId u = 0; u < net.num_nodes(); ++u) {
    EXPECT_DOUBLE_EQ(dist[u], PointToPointTime(net, u, 9, 3));
  }
}

TEST(DijkstraTest, BoundCutsOffFarNodes) {
  RoadNetwork net = testing::LineNetwork(10, 60.0);
  auto dist = SingleSourceTimes(net, 0, 0, /*bound=*/150.0);
  EXPECT_DOUBLE_EQ(dist[0], 0.0);
  EXPECT_DOUBLE_EQ(dist[1], 60.0);
  EXPECT_DOUBLE_EQ(dist[2], 120.0);
  EXPECT_EQ(dist[3], kInfiniteTime);
  EXPECT_EQ(dist[9], kInfiniteTime);
}

TEST(DijkstraTest, ShortestPathNodesReconstructsPath) {
  RoadNetwork net = testing::LineNetwork(6, 60.0);
  auto path = ShortestPathNodes(net, 1, 4, 0);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path.front(), 1u);
  EXPECT_EQ(path.back(), 4u);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_EQ(path[i + 1], path[i] + 1);
  }
}

TEST(DijkstraTest, ShortestPathNodesLengthMatchesDistance) {
  Rng rng(125);
  RoadNetwork net = testing::RandomConnectedNetwork(rng, 50, 200);
  for (int trial = 0; trial < 30; ++trial) {
    NodeId s = static_cast<NodeId>(rng.UniformInt(net.num_nodes()));
    NodeId t = static_cast<NodeId>(rng.UniformInt(net.num_nodes()));
    auto path = ShortestPathNodes(net, s, t, 5);
    const Seconds expected = PointToPointTime(net, s, t, 5);
    ASSERT_FALSE(path.empty());
    // Sum the cheapest edge between consecutive nodes.
    Seconds total = 0;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      Seconds best = kInfiniteTime;
      for (EdgeId e : net.OutEdges(path[i])) {
        if (net.edge_head(e) == path[i + 1]) {
          best = std::min(best, net.EdgeTime(e, 5));
        }
      }
      total += best;
    }
    EXPECT_NEAR(total, expected, 1e-9);
  }
}

TEST(DijkstraTest, SelfPathIsSingleton) {
  RoadNetwork net = testing::LineNetwork(3);
  auto path = ShortestPathNodes(net, 1, 1, 0);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], 1u);
}

}  // namespace
}  // namespace fm
