// Focused tests for the reshuffling semantics of §IV-D2: assigned-but-
// unpicked orders are offered for re-assignment each window, keep their
// incumbent vehicle when the matching does not move them, and are never
// rejected once allocated.
#include <gtest/gtest.h>

#include "core/matching_policy.h"
#include "graph/distance_oracle.h"
#include "sim/simulator.h"
#include "tests/test_util.h"

namespace fm {
namespace {

Order MakeOrder(OrderId id, NodeId r, NodeId c, Seconds placed,
                Seconds prep = 0.0) {
  Order o;
  o.id = id;
  o.restaurant = r;
  o.customer = c;
  o.placed_at = placed;
  o.prep_time = prep;
  return o;
}

Vehicle MakeVehicle(VehicleId id, NodeId at) {
  Vehicle v;
  v.id = id;
  v.start_node = at;
  return v;
}

class ReshuffleTest : public ::testing::Test {
 protected:
  ReshuffleTest()
      : net_(testing::LineNetwork(40, 60.0, 500.0)),
        oracle_(&net_, OracleBackend::kDijkstra) {
    config_.accumulation_window = 60.0;
  }

  SimulationInput BaseInput() {
    SimulationInput input;
    input.network = &net_;
    input.oracle = &oracle_;
    input.config = config_;
    input.start_time = 0.0;
    input.end_time = 3600.0;
    input.drain_time = 10800.0;
    input.measure_wall_clock = false;
    return input;
  }

  RoadNetwork net_;
  DistanceOracle oracle_;
  Config config_;
};

TEST_F(ReshuffleTest, IncumbentKeepsOrderWhenAlone) {
  // One vehicle, one order far away with a very long prep: the order stays
  // unpicked across many windows. Reshuffling must not lose it.
  SimulationInput input = BaseInput();
  input.fleet = {MakeVehicle(0, 0)};
  input.orders = {MakeOrder(0, 30, 32, 30.0, /*prep=*/2400.0)};
  MatchingPolicy policy(&oracle_, config_,
                        MatchingPolicyOptions::FoodMatch());
  Simulator sim(std::move(input), &policy);
  const SimulationResult r = sim.Run();
  EXPECT_EQ(r.metrics.orders_delivered, 1u);
  EXPECT_EQ(r.metrics.orders_rejected, 0u);
  // Delivered essentially at the SDT bound: vehicle arrives (30 edges =
  // 1800 s) before food is ready (2430), waits, then 2 edges to drop.
  EXPECT_NEAR(r.outcomes[0].delivered_at, 30.0 + 2400.0 + 120.0, 61.0);
}

TEST_F(ReshuffleTest, AllocatedOrdersSurviveThirtyMinutes) {
  // Long prep keeps the order unpicked past the 30-minute mark. Without the
  // "allocated" exemption it would be rejected; it must be delivered.
  SimulationInput input = BaseInput();
  input.fleet = {MakeVehicle(0, 5)};
  input.orders = {MakeOrder(0, 6, 8, 10.0, /*prep=*/2200.0)};
  MatchingPolicy policy(&oracle_, config_,
                        MatchingPolicyOptions::FoodMatch());
  Simulator sim(std::move(input), &policy);
  const SimulationResult r = sim.Run();
  EXPECT_EQ(r.metrics.orders_rejected, 0u);
  EXPECT_EQ(r.metrics.orders_delivered, 1u);
}

TEST_F(ReshuffleTest, BetterVehicleTakesOverBeforePickup) {
  // Vehicle 0 (very far: its first mile exceeds the prep time, so its XDT
  // is strictly positive) gets the order first; vehicle 1 comes on duty
  // next to the restaurant before the pickup happens and can deliver at the
  // SDT bound. Reshuffling must hand the order over.
  SimulationInput input = BaseInput();
  Vehicle late = MakeVehicle(1, 34);
  late.on_duty_from = 600.0;  // appears after the first assignments
  input.fleet = {MakeVehicle(0, 0), late};
  // Restaurant 35 is 2100 s from vehicle 0 but 60 s from vehicle 1; food is
  // ready at t=930, long before vehicle 0 could arrive.
  input.orders = {MakeOrder(0, 35, 37, 30.0, /*prep=*/900.0)};
  MatchingPolicy policy(&oracle_, config_,
                        MatchingPolicyOptions::FoodMatch());
  Simulator sim(std::move(input), &policy);
  const SimulationResult r = sim.Run();
  ASSERT_EQ(r.metrics.orders_delivered, 1u);
  EXPECT_EQ(r.outcomes[0].vehicle, 1u);  // the nearby latecomer delivers
  EXPECT_GE(r.outcomes[0].times_assigned, 2);
}

TEST_F(ReshuffleTest, NoReshuffleKeepsFirstAssignment) {
  // Same setup but with a non-reshuffling policy: vehicle 0 keeps it.
  SimulationInput input = BaseInput();
  Vehicle late = MakeVehicle(1, 19);
  late.on_duty_from = 600.0;
  input.fleet = {MakeVehicle(0, 0), late};
  input.orders = {MakeOrder(0, 20, 22, 30.0, /*prep=*/1500.0)};
  MatchingPolicy policy(&oracle_, config_,
                        MatchingPolicyOptions::VanillaKM());
  Simulator sim(std::move(input), &policy);
  const SimulationResult r = sim.Run();
  ASSERT_EQ(r.metrics.orders_delivered, 1u);
  EXPECT_EQ(r.outcomes[0].vehicle, 0u);
  EXPECT_EQ(r.outcomes[0].times_assigned, 1);
}

TEST_F(ReshuffleTest, PickedOrdersAreNeverReshuffled) {
  // Once picked up (prep 0, vehicle adjacent) the order cannot move even
  // though a closer vehicle appears.
  SimulationInput input = BaseInput();
  Vehicle late = MakeVehicle(1, 25);
  late.on_duty_from = 400.0;
  input.fleet = {MakeVehicle(0, 4), late};
  // Pickup at node 5 (60 s away), customer far at node 26.
  input.orders = {MakeOrder(0, 5, 26, 30.0, 0.0)};
  MatchingPolicy policy(&oracle_, config_,
                        MatchingPolicyOptions::FoodMatch());
  Simulator sim(std::move(input), &policy);
  const SimulationResult r = sim.Run();
  ASSERT_EQ(r.metrics.orders_delivered, 1u);
  EXPECT_EQ(r.outcomes[0].vehicle, 0u);
}

TEST_F(ReshuffleTest, ReshuffleNeverIncreasesDeliveredCount) {
  // Sanity across seeds: reshuffling must not lose orders relative to the
  // same policy without reshuffling.
  Rng rng(77);
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<Order> orders;
    for (int i = 0; i < 12; ++i) {
      orders.push_back(MakeOrder(i, static_cast<NodeId>(rng.UniformInt(40)),
                                 static_cast<NodeId>(rng.UniformInt(40)),
                                 rng.UniformRange(0.0, 1800.0),
                                 rng.UniformRange(120.0, 900.0)));
    }
    std::sort(orders.begin(), orders.end(),
              [](const Order& a, const Order& b) {
                return a.placed_at < b.placed_at;
              });
    for (std::size_t i = 0; i < orders.size(); ++i) {
      orders[i].id = static_cast<OrderId>(i);
    }
    auto run = [&](MatchingPolicyOptions options) {
      SimulationInput input = BaseInput();
      input.fleet = {MakeVehicle(0, 3), MakeVehicle(1, 20),
                     MakeVehicle(2, 36)};
      input.orders = orders;
      MatchingPolicy policy(&oracle_, config_, options);
      Simulator sim(std::move(input), &policy);
      return sim.Run();
    };
    MatchingPolicyOptions with = MatchingPolicyOptions::FoodMatch();
    MatchingPolicyOptions without = with;
    without.reshuffle = false;
    const auto rw = run(with);
    const auto ro = run(without);
    EXPECT_EQ(rw.metrics.orders_delivered + rw.metrics.orders_rejected,
              rw.metrics.orders_total);
    EXPECT_GE(rw.metrics.orders_delivered + 1, ro.metrics.orders_delivered)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace fm
