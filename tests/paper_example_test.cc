// Tests that re-derive the paper's worked examples and definitional
// identities (Ex. 1–6, Eq. 1/2, Defs. 5–7, §IV-A's greedy-vs-matching gap)
// on purpose-built instances.
#include <gtest/gtest.h>

#include "core/greedy_policy.h"
#include "core/matching_policy.h"
#include "graph/distance_oracle.h"
#include "matching/hungarian.h"
#include "routing/costs.h"
#include "routing/route_planner.h"
#include "tests/test_util.h"

namespace fm {
namespace {

// A Fig.-1-style instance: a small weighted network with one vehicle and
// one order whose quantities we can compute by hand.
//
//   u0 --8--> u1 --5--> u2 --8--> u3
// (vehicle at u0, restaurant u1, customer u3, prep 5)
// All weights in "minutes" (scaled to seconds in the builder).
class PaperExampleTest : public ::testing::Test {
 protected:
  PaperExampleTest() {
    RoadNetwork::Builder builder;
    for (int i = 0; i < 4; ++i) builder.AddNode({0, i * 0.01});
    auto add = [&](NodeId a, NodeId b, double minutes) {
      builder.AddEdgeConstant(a, b, minutes * 400, minutes * 60.0);
      builder.AddEdgeConstant(b, a, minutes * 400, minutes * 60.0);
    };
    add(0, 1, 8.0);
    add(1, 2, 5.0);
    add(2, 3, 8.0);
    net_ = builder.Build();
    oracle_ = std::make_unique<DistanceOracle>(&net_, OracleBackend::kDijkstra);
  }

  RoadNetwork net_;
  std::unique_ptr<DistanceOracle> oracle_;
};

TEST_F(PaperExampleTest, Example1FirstAndLastMile) {
  // firstMile = SP(u0, u1) = 8 min; lastMile = SP(u1, u3) = 13 min.
  EXPECT_DOUBLE_EQ(oracle_->Duration(0, 1, 0), 8 * 60.0);
  EXPECT_DOUBLE_EQ(oracle_->Duration(1, 3, 0), 13 * 60.0);
}

TEST_F(PaperExampleTest, Example2ExpectedDeliveryTime) {
  // EDT = max(firstMile, prep) + lastMile = max(8, 5) + 13 = 21 min (Eq. 2).
  Order o;
  o.id = 0;
  o.restaurant = 1;
  o.customer = 3;
  o.placed_at = 0.0;
  o.prep_time = 5 * 60.0;
  PlanRequest req;
  req.start = 0;
  req.start_time = 0.0;
  req.to_pick = {o};
  const PlanResult r = PlanOptimalRoute(*oracle_, req);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.completion_time, 21 * 60.0);
}

TEST_F(PaperExampleTest, Example3ExtraDeliveryTime) {
  // SDT = 5 + 13 = 18 min; EDT = 21 min → XDT = 3 min (Defs. 6–7).
  Order o;
  o.id = 0;
  o.restaurant = 1;
  o.customer = 3;
  o.placed_at = 0.0;
  o.prep_time = 5 * 60.0;
  EXPECT_DOUBLE_EQ(ShortestDeliveryTime(*oracle_, o), 18 * 60.0);
  EXPECT_DOUBLE_EQ(ExtraDeliveryTime(*oracle_, o, 21 * 60.0), 3 * 60.0);

  PlanRequest req;
  req.start = 0;
  req.start_time = 0.0;
  req.to_pick = {o};
  EXPECT_DOUBLE_EQ(PlanOptimalRoute(*oracle_, req).cost, 3 * 60.0);
}

TEST_F(PaperExampleTest, WaitingVehicleAchievesSdt) {
  // Def. 6: SDT is achieved when the vehicle is already at the restaurant.
  Order o;
  o.id = 0;
  o.restaurant = 1;
  o.customer = 3;
  o.placed_at = 0.0;
  o.prep_time = 5 * 60.0;
  PlanRequest req;
  req.start = 1;  // vehicle at the restaurant
  req.start_time = 0.0;
  req.to_pick = {o};
  const PlanResult r = PlanOptimalRoute(*oracle_, req);
  EXPECT_DOUBLE_EQ(r.completion_time, 18 * 60.0);
  EXPECT_DOUBLE_EQ(r.cost, 0.0);
}

// Example 4/5/6 shape: greedy makes the locally-optimal first choice and
// ends up worse than the minimum weight perfect matching.
TEST(PaperExample56Test, MatchingBeatsGreedyOnFig1Pattern) {
  // Cost matrix shaped like Fig. 2: greedy picks (o2,v2)=0 first, then pays
  // 3 + 3 = 6 total; matching achieves 5.
  CostMatrix cost(3, 3);
  // rows = orders o1..o3, cols = vehicles v1..v3.
  const double w[3][3] = {
      {3, 1, 7},   // o1
      {5, 0, 1},   // o2
      {3, 17, 7},  // o3
  };
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) cost.set(r, c, w[r][c]);
  }
  // Greedy simulation on the same matrix.
  double greedy_total = 0.0;
  std::vector<bool> row_used(3, false), col_used(3, false);
  for (int step = 0; step < 3; ++step) {
    double best = 1e18;
    int br = -1, bc = -1;
    for (int r = 0; r < 3; ++r) {
      if (row_used[r]) continue;
      for (int c = 0; c < 3; ++c) {
        if (col_used[c]) continue;
        if (cost.at(r, c) < best) {
          best = cost.at(r, c);
          br = r;
          bc = c;
        }
      }
    }
    row_used[br] = col_used[bc] = true;
    greedy_total += best;
  }
  const Assignment optimal = SolveAssignment(cost);
  EXPECT_LT(optimal.total_cost, greedy_total);
  EXPECT_DOUBLE_EQ(optimal.total_cost, 5.0);  // o1→v2, o2→v3, o3→v1
  // Greedy: (o2,v2)=0, then (o1,v1)=3, then (o3,v3)=7.
  EXPECT_DOUBLE_EQ(greedy_total, 10.0);
}

// Eq. 1 / Eq. 2 equivalence inside the planner: preparation progresses in
// parallel with the first mile.
TEST(PaperEq2Test, PrepTimeOverlapsFirstMile) {
  RoadNetwork net = fm::testing::LineNetwork(12, 60.0);
  DistanceOracle oracle(&net, OracleBackend::kDijkstra);
  for (double prep_minutes : {0.0, 2.0, 5.0, 10.0, 30.0}) {
    Order o;
    o.id = 0;
    o.restaurant = 5;
    o.customer = 9;
    o.placed_at = 0.0;
    o.prep_time = prep_minutes * 60.0;
    PlanRequest req;
    req.start = 0;
    req.start_time = 0.0;
    req.to_pick = {o};
    const PlanResult r = PlanOptimalRoute(oracle, req);
    const Seconds first_mile = 5 * 60.0;
    const Seconds last_mile = 4 * 60.0;
    EXPECT_DOUBLE_EQ(r.completion_time,
                     std::max(first_mile, o.prep_time) + last_mile)
        << "prep=" << prep_minutes;
  }
}

}  // namespace
}  // namespace fm
