// The sharded serving layer: GridRegionPartitioner cell geometry (factoring,
// boundaries, out-of-bbox clamping), ShardedDispatchEngine event routing
// (order ownership, vehicle migration + in-flight pinning), the K=1
// bit-for-bit equivalence gate against a single DispatchEngine, K>1
// determinism across thread counts, and rolling-horizon bounded state with
// retirement events.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/dispatch_engine.h"
#include "core/policy_registry.h"
#include "gen/city_gen.h"
#include "graph/distance_oracle.h"
#include "serving/event_replay.h"
#include "serving/region_partitioner.h"
#include "serving/sharded_dispatch_engine.h"

namespace fm {
namespace {

// A policy that never assigns, for routing tests where only the router's
// bookkeeping matters. Registered under "test-noop" so the sharded engine
// can build it by name.
class NoopPolicy : public AssignmentPolicy {
 public:
  std::string name() const override { return "test-noop"; }
  bool wants_reshuffle() const override { return false; }
  AssignmentDecision Assign(const std::vector<Order>&,
                            const std::vector<VehicleSnapshot>&,
                            Seconds) override {
    return {};
  }
};

const PolicyRegistrar kNoopRegistrar(
    "test-noop",
    [](const DistanceOracle*, const Config&, const PolicyOptions&) {
      return std::make_unique<NoopPolicy>();
    });

// Five nodes spanning the unit-ish box [0, 0.9]²: the four corners plus the
// exact cell-boundary point of a 2×2 grid. Connected so oracles (unused by
// the noop policy) stay constructible.
RoadNetwork BuildQuadNetwork() {
  RoadNetwork::Builder b;
  b.AddNode({0.0, 0.0});    // 0: south-west
  b.AddNode({0.0, 0.9});    // 1: south-east
  b.AddNode({0.9, 0.0});    // 2: north-west
  b.AddNode({0.9, 0.9});    // 3: north-east
  b.AddNode({0.45, 0.45});  // 4: the 2×2 boundary corner
  for (NodeId u = 0; u + 1 < 5; ++u) {
    b.AddEdgeConstant(u, u + 1, 1000.0, 60.0);
    b.AddEdgeConstant(u + 1, u, 1000.0, 60.0);
  }
  return b.Build();
}

Order MakeOrder(OrderId id, NodeId restaurant, Seconds placed) {
  Order o;
  o.id = id;
  o.restaurant = restaurant;
  o.customer = restaurant;
  o.placed_at = placed;
  return o;
}

VehicleSnapshot MakeSnapshot(VehicleId id, NodeId at) {
  VehicleSnapshot v;
  v.id = id;
  v.location = at;
  v.next_destination = at;
  return v;
}

// ---- GridRegionPartitioner ----

TEST(GridRegionPartitionerTest, FactorsShardCountIntoNearSquareGrid) {
  RoadNetwork net = BuildQuadNetwork();
  struct Case {
    int shards, rows, cols;
  };
  for (const Case& c : std::vector<Case>{
           {1, 1, 1}, {2, 1, 2}, {3, 1, 3}, {4, 2, 2}, {5, 1, 5},
           {6, 2, 3}, {8, 2, 4}, {9, 3, 3}, {12, 3, 4}}) {
    GridRegionPartitioner p(&net, c.shards);
    EXPECT_EQ(p.num_shards(), c.shards);
    EXPECT_EQ(p.rows(), c.rows) << c.shards;
    EXPECT_EQ(p.cols(), c.cols) << c.shards;
    for (NodeId n = 0; n < net.num_nodes(); ++n) {
      EXPECT_GE(p.ShardOfNode(n), 0);
      EXPECT_LT(p.ShardOfNode(n), c.shards);
    }
  }
}

TEST(GridRegionPartitionerTest, QuadrantGridAssignsExpectedCells) {
  RoadNetwork net = BuildQuadNetwork();
  GridRegionPartitioner p(&net, 4);  // 2×2, cell 0.45° per axis
  EXPECT_EQ(p.min_corner(), (LatLon{0.0, 0.0}));
  EXPECT_EQ(p.max_corner(), (LatLon{0.9, 0.9}));
  EXPECT_EQ(p.ShardOfNode(0), 0);  // (0, 0):     row 0, col 0
  EXPECT_EQ(p.ShardOfNode(1), 1);  // (0, 0.9):   row 0, col 1
  EXPECT_EQ(p.ShardOfNode(2), 2);  // (0.9, 0):   row 1, col 0
  EXPECT_EQ(p.ShardOfNode(3), 3);  // (0.9, 0.9): row 1, col 1
  // A point exactly on the cell boundary belongs to the upper cell
  // (half-open intervals [min + i·cell, min + (i+1)·cell)).
  EXPECT_EQ(p.ShardOfNode(4), 3);  // (0.45, 0.45)
  EXPECT_EQ(p.ShardOfPosition({0.45, 0.0}), 2);
  EXPECT_EQ(p.ShardOfPosition({0.0, 0.45}), 1);
}

TEST(GridRegionPartitionerTest, OutOfBoundingBoxPositionsClampToEdgeCells) {
  RoadNetwork net = BuildQuadNetwork();
  GridRegionPartitioner p(&net, 4);
  EXPECT_EQ(p.ShardOfPosition({-90.0, -180.0}), 0);
  EXPECT_EQ(p.ShardOfPosition({90.0, 180.0}), 3);
  EXPECT_EQ(p.ShardOfPosition({-90.0, 180.0}), 1);
  EXPECT_EQ(p.ShardOfPosition({90.0, -180.0}), 2);
  // The box's own max corner clamps into the last cell, not past it.
  EXPECT_EQ(p.ShardOfPosition(p.max_corner()), 3);
}

TEST(GridRegionPartitionerTest, FlatAxisSplitsAlongTheSpreadAxisOnly) {
  // All nodes share one latitude: a 2×2 factoring would leave row 1 (and
  // with it half the shards) unreachable, so the grid must become 1×4
  // strips along the spread (longitude) axis.
  RoadNetwork::Builder b;
  b.AddNode({0.0, 0.0});
  b.AddNode({0.0, 0.3});
  b.AddNode({0.0, 0.6});
  b.AddNode({0.0, 0.9});
  b.AddEdgeConstant(0, 1, 1000.0, 60.0);
  RoadNetwork net = b.Build();
  GridRegionPartitioner p(&net, 4);
  EXPECT_EQ(p.rows(), 1);
  EXPECT_EQ(p.cols(), 4);
  for (NodeId n = 0; n < net.num_nodes(); ++n) {
    EXPECT_EQ(p.ShardOfNode(n), static_cast<int>(n));
  }
  // Flat longitude instead: K×1 strips along latitude.
  RoadNetwork::Builder b2;
  b2.AddNode({0.0, 0.5});
  b2.AddNode({0.9, 0.5});
  b2.AddEdgeConstant(0, 1, 1000.0, 60.0);
  RoadNetwork net2 = b2.Build();
  GridRegionPartitioner p2(&net2, 4);
  EXPECT_EQ(p2.rows(), 4);
  EXPECT_EQ(p2.cols(), 1);
  EXPECT_EQ(p2.ShardOfNode(0), 0);
  EXPECT_EQ(p2.ShardOfNode(1), 3);
}

// ---- Event routing ----

class ShardedRoutingTest : public ::testing::Test {
 protected:
  ShardedRoutingTest()
      : network_(BuildQuadNetwork()),
        oracle_(&network_, OracleBackend::kDijkstra),
        partitioner_(&network_, 2) {  // 1×2: lon < 0.45 → 0, else → 1
    config_.accumulation_window = 60.0;
    config_.shards = 2;
  }

  ShardedDispatchEngine MakeEngine() {
    ShardedEngineOptions options;
    options.engine.measure_wall_clock = false;
    return ShardedDispatchEngine(&partitioner_, "test-noop", &oracle_,
                                 config_, PolicyOptions{}, options);
  }

  RoadNetwork network_;
  DistanceOracle oracle_;
  GridRegionPartitioner partitioner_;
  Config config_;
};

TEST_F(ShardedRoutingTest, OrdersRouteToTheirRestaurantShard) {
  ShardedDispatchEngine engine = MakeEngine();
  engine.Handle(OrderPlaced{MakeOrder(0, /*restaurant=*/0, 10.0)});  // west
  engine.Handle(OrderPlaced{MakeOrder(1, /*restaurant=*/1, 11.0)});  // east
  engine.Handle(OrderPlaced{MakeOrder(2, /*restaurant=*/2, 12.0)});  // west
  EXPECT_EQ(engine.shard_of_order(0), 0);
  EXPECT_EQ(engine.shard_of_order(1), 1);
  EXPECT_EQ(engine.shard_of_order(2), 0);
  EXPECT_EQ(engine.shard_of_order(99), -1);
  EXPECT_EQ(engine.shard(0).pending_orders(), 2u);
  EXPECT_EQ(engine.shard(1).pending_orders(), 1u);
  EXPECT_EQ(engine.pending_orders(), 3u);

  // Delivery retires the routing entry (bounded router state).
  engine.Handle(OrderDelivered{1});
  EXPECT_EQ(engine.shard_of_order(1), -1);
}

TEST_F(ShardedRoutingTest, EmptyVehiclesMigrateAndLoadedVehiclesPin) {
  ShardedDispatchEngine engine = MakeEngine();
  engine.Handle(VehicleStateUpdate{MakeSnapshot(7, /*at=*/0), true});
  EXPECT_EQ(engine.shard_of_vehicle(7), 0);
  EXPECT_EQ(engine.shard(0).vehicle_count(), 1u);

  // Crossing the boundary with an in-flight order: pinned to shard 0.
  VehicleSnapshot loaded = MakeSnapshot(7, /*at=*/1);
  loaded.unpicked.push_back(MakeOrder(5, 0, 10.0));
  engine.Handle(VehicleStateUpdate{loaded, true});
  EXPECT_EQ(engine.shard_of_vehicle(7), 0);
  EXPECT_EQ(engine.shard(0).vehicle_count(), 1u);
  EXPECT_EQ(engine.shard(1).vehicle_count(), 0u);

  // The order delivers (the driver notifies before the next update, so the
  // old record is pruned), and the now-empty vehicle migrates — retired
  // from shard 0, freshly announced to shard 1, nothing left behind.
  engine.Handle(OrderDelivered{5, 7});
  engine.Handle(VehicleStateUpdate{MakeSnapshot(7, /*at=*/1), true});
  EXPECT_EQ(engine.shard_of_vehicle(7), 1);
  EXPECT_EQ(engine.shard(0).vehicle_count(), 0u);
  EXPECT_EQ(engine.shard(1).vehicle_count(), 1u);
  EXPECT_EQ(engine.pending_orders(), 0u);

  // Explicit retirement forgets the vehicle entirely.
  engine.Handle(VehicleRetired{7});
  EXPECT_EQ(engine.shard_of_vehicle(7), -1);
  EXPECT_EQ(engine.shard(1).vehicle_count(), 0u);
}

TEST_F(ShardedRoutingTest, BarePingConsultsEngineRecordAndCountsMigrations) {
  ShardedDispatchEngine engine = MakeEngine();
  VehicleSnapshot loaded = MakeSnapshot(7, /*at=*/0);
  loaded.unpicked.push_back(MakeOrder(5, 0, 10.0));
  engine.Handle(VehicleStateUpdate{loaded, true});
  EXPECT_EQ(engine.shard_of_vehicle(7), 0);
  EXPECT_EQ(engine.migrations(), 0u);

  // A bare position ping from across the boundary carries no lists; only
  // the owning engine's record proves the vehicle is loaded. The router
  // must consult that record and pin, keeping the preserved unpicked order
  // in shard 0.
  engine.Handle(VehicleStateUpdate{MakeSnapshot(7, /*at=*/1), true});
  EXPECT_EQ(engine.shard_of_vehicle(7), 0);
  EXPECT_EQ(engine.migrations(), 0u);
  EXPECT_TRUE(engine.shard(0).VehicleHasInFlight(7));
  EXPECT_EQ(engine.shard(1).vehicle_count(), 0u);

  // Delivery empties the record; the next boundary-crossing bare ping
  // migrates (retire from 0, fresh announce on 1) and counts.
  engine.Handle(OrderDelivered{5, 7});
  engine.Handle(VehicleStateUpdate{MakeSnapshot(7, /*at=*/1), true});
  EXPECT_EQ(engine.shard_of_vehicle(7), 1);
  EXPECT_EQ(engine.migrations(), 1u);
  EXPECT_EQ(engine.shard(0).vehicle_count(), 0u);
  EXPECT_EQ(engine.shard(1).vehicle_count(), 1u);
  // The migration retirement must be clean: nothing returned to shard 0's
  // pool (the record was already pruned by OrderDelivered).
  EXPECT_EQ(engine.pending_orders(), 0u);
}

TEST_F(ShardedRoutingTest, RunWindowReportsPerShardAndMergedResults) {
  ShardedDispatchEngine engine = MakeEngine();
  engine.Handle(VehicleStateUpdate{MakeSnapshot(0, 0), true});
  engine.Handle(VehicleStateUpdate{MakeSnapshot(1, 1), true});
  // One order per region, both old enough to be rejected by the ageing
  // rule (the noop policy never assigns).
  engine.Handle(OrderPlaced{MakeOrder(0, 0, 0.0)});
  engine.Handle(OrderPlaced{MakeOrder(1, 1, 0.0)});
  FleetWindowResult fleet = engine.RunWindow(WindowClosed{7200.0});
  ASSERT_EQ(fleet.shards.size(), 2u);
  ASSERT_EQ(fleet.shards[0].rejected.size(), 1u);
  EXPECT_EQ(fleet.shards[0].rejected[0], 0u);
  ASSERT_EQ(fleet.shards[1].rejected.size(), 1u);
  EXPECT_EQ(fleet.shards[1].rejected[0], 1u);
  // Merge concatenates in shard order.
  ASSERT_EQ(fleet.merged.rejected.size(), 2u);
  EXPECT_EQ(fleet.merged.rejected[0], 0u);
  EXPECT_EQ(fleet.merged.rejected[1], 1u);
  EXPECT_EQ(engine.pending_orders(), 0u);
  // Rejection evicts the routing entries too — the router's order table
  // must not outlive the orders it routes.
  EXPECT_EQ(engine.shard_of_order(0), -1);
  EXPECT_EQ(engine.shard_of_order(1), -1);
  EXPECT_EQ(engine.routed_orders(), 0u);
}

// ---- Equivalence and determinism ----

struct Scenario {
  RoadNetwork network;
  std::vector<Vehicle> fleet;
  std::vector<Order> orders;
};

Scenario MakeScenario(std::uint64_t seed, int num_vehicles, int num_orders,
                      Seconds horizon) {
  Rng rng(seed);
  CityGenParams params;
  params.grid_width = 12;
  params.grid_height = 12;
  params.congestion = UrbanCongestion(1.8);
  Scenario s;
  s.network = GenerateGridCity(params, rng);
  for (int i = 0; i < num_vehicles; ++i) {
    Vehicle v;
    v.id = static_cast<VehicleId>(i);
    v.start_node = static_cast<NodeId>(rng.UniformInt(s.network.num_nodes()));
    s.fleet.push_back(v);
  }
  for (int i = 0; i < num_orders; ++i) {
    Order o;
    o.restaurant = static_cast<NodeId>(rng.UniformInt(s.network.num_nodes()));
    o.customer = static_cast<NodeId>(rng.UniformInt(s.network.num_nodes()));
    o.placed_at = 12 * 3600.0 + rng.UniformRange(0.0, horizon);
    o.prep_time = rng.UniformRange(120.0, 1200.0);
    o.items = rng.UniformIntRange(1, 4);
    s.orders.push_back(o);
  }
  std::sort(s.orders.begin(), s.orders.end(),
            [](const Order& a, const Order& b) {
              return a.placed_at < b.placed_at;
            });
  for (std::size_t i = 0; i < s.orders.size(); ++i) {
    s.orders[i].id = static_cast<OrderId>(i);
  }
  return s;
}

// The canonical static-fleet replay (the same helper the bench gates
// drive) over the scenario's event stream.
std::vector<WindowResult> DriveScenario(DispatchCore& core, const Scenario& s,
                                        Seconds delta, Seconds horizon) {
  const Seconds start = 12 * 3600.0;
  return ReplayOrderStream(core, s.fleet, s.orders, start, start + horizon,
                           delta);
}

void ExpectWindowResultsEqual(const std::vector<WindowResult>& a,
                              const std::vector<WindowResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t w = 0; w < a.size(); ++w) {
    SCOPED_TRACE("window " + std::to_string(w));
    EXPECT_EQ(a[w].now, b[w].now);
    EXPECT_EQ(a[w].rejected, b[w].rejected);
    EXPECT_EQ(a[w].reshuffled_vehicles, b[w].reshuffled_vehicles);
    ASSERT_EQ(a[w].decision.assignments.size(),
              b[w].decision.assignments.size());
    for (std::size_t i = 0; i < a[w].decision.assignments.size(); ++i) {
      EXPECT_EQ(a[w].decision.assignments[i].vehicle,
                b[w].decision.assignments[i].vehicle);
      EXPECT_EQ(a[w].decision.assignments[i].orders,
                b[w].decision.assignments[i].orders);
    }
    ASSERT_EQ(a[w].reinstatements.size(), b[w].reinstatements.size());
    for (std::size_t i = 0; i < a[w].reinstatements.size(); ++i) {
      EXPECT_EQ(a[w].reinstatements[i].order, b[w].reinstatements[i].order);
      EXPECT_EQ(a[w].reinstatements[i].vehicle,
                b[w].reinstatements[i].vehicle);
    }
    EXPECT_EQ(a[w].decision.cost_evaluations,
              b[w].decision.cost_evaluations);
    EXPECT_EQ(a[w].decision_seconds, b[w].decision_seconds);
  }
}

TEST(ShardedEquivalenceTest, K1ReproducesSingleEngineBitForBit) {
  Scenario s = MakeScenario(1357, 6, 60, 1800.0);
  DistanceOracle oracle(&s.network, OracleBackend::kDijkstra);
  GridRegionPartitioner partitioner(&s.network, 1);
  for (const char* name : {"foodmatch", "greedy", "km"}) {
    SCOPED_TRACE(name);
    Config config;
    config.accumulation_window = 120.0;
    std::unique_ptr<AssignmentPolicy> policy =
        PolicyRegistry::Global().Create(name, &oracle, config);
    DispatchEngine single(policy.get(), config,
                          DispatchEngineOptions{.measure_wall_clock = false});
    const std::vector<WindowResult> expected =
        DriveScenario(single, s, 120.0, 1800.0);

    ShardedEngineOptions options;
    options.engine.measure_wall_clock = false;
    ShardedDispatchEngine sharded(&partitioner, name, &oracle, config,
                                  PolicyOptions{}, options);
    const std::vector<WindowResult> merged =
        DriveScenario(sharded, s, 120.0, 1800.0);
    ExpectWindowResultsEqual(expected, merged);
  }
}

TEST(ShardedDeterminismTest, MergedResultsIdenticalAcrossThreadCounts) {
  Scenario s = MakeScenario(2468, 8, 70, 1800.0);
  DistanceOracle oracle(&s.network, OracleBackend::kDijkstra);
  for (int shards : {2, 4}) {
    SCOPED_TRACE("shards " + std::to_string(shards));
    GridRegionPartitioner partitioner(&s.network, shards);
    auto run = [&](int threads) {
      Config config;
      config.accumulation_window = 120.0;
      config.threads = threads;
      config.shards = shards;
      ShardedEngineOptions options;
      options.engine.measure_wall_clock = false;
      ShardedDispatchEngine sharded(&partitioner, "foodmatch", &oracle,
                                    config, PolicyOptions{}, options);
      return DriveScenario(sharded, s, 120.0, 1800.0);
    };
    ExpectWindowResultsEqual(run(1), run(4));
  }
}

// ---- Rolling horizon: bounded resident state under retirement events ----

TEST(ShardedRollingTest, RetirementEventsKeepResidentStateBounded) {
  Scenario s = MakeScenario(9753, 6, 0, 3600.0);
  DistanceOracle oracle(&s.network, OracleBackend::kDijkstra);
  const int shards = 2;
  GridRegionPartitioner partitioner(&s.network, shards);
  Config config;
  config.accumulation_window = 60.0;
  config.shards = shards;
  ShardedEngineOptions options;
  options.engine.measure_wall_clock = false;
  ShardedDispatchEngine engine(&partitioner, "greedy", &oracle, config,
                               PolicyOptions{}, options);

  std::vector<VehicleSnapshot> fleet;
  for (const Vehicle& v : s.fleet) {
    fleet.push_back(MakeSnapshot(v.id, v.start_node));
    engine.Handle(VehicleStateUpdate{fleet.back(), true});
  }

  Rng rng(42);
  constexpr int kWindows = 150;
  constexpr int kPerWindow = 4;
  OrderId next_id = 0;
  std::uint64_t delivered = 0;
  std::size_t max_resident = 0;
  for (int w = 1; w <= kWindows; ++w) {
    const Seconds now = 12 * 3600.0 + 60.0 * w;
    for (int i = 0; i < kPerWindow; ++i) {
      Order o = MakeOrder(next_id++,
                          static_cast<NodeId>(
                              rng.UniformInt(s.network.num_nodes())),
                          now - 30.0);
      engine.Handle(OrderPlaced{o});
    }
    const WindowResult result = engine.Handle(WindowClosed{now});
    // The toy driver delivers every assignment before the next window and
    // notifies the engine, as a rolling service would.
    for (const AssignmentDecision::Item& item :
         result.decision.assignments) {
      for (const Order& o : item.orders) {
        engine.Handle(OrderDelivered{o.id, item.vehicle});
        ++delivered;
      }
      engine.Handle(VehicleStateUpdate{fleet[item.vehicle], true});
    }
    std::size_t resident = engine.pending_orders() + engine.routed_orders();
    for (int sh = 0; sh < shards; ++sh) {
      resident += engine.shard(sh).ever_assigned_count() +
                  engine.shard(sh).vehicle_count();
    }
    max_resident = std::max(max_resident, resident);
  }

  // Total processed orders grow into the hundreds while resident state
  // (pool + router order table + ever-assigned + vehicle records, summed
  // over shards) stays bounded by the in-flight load: the per-window intake
  // that can pile up for max_unassigned_age windows at worst — counted
  // twice, once in a pool and once in the router table — plus the fleet.
  EXPECT_EQ(next_id, static_cast<OrderId>(kWindows * kPerWindow));
  EXPECT_GT(delivered, 100u);
  const std::size_t bound =
      2 * static_cast<std::size_t>(
              kPerWindow * (config.max_unassigned_age / 60.0 + 2)) +
      s.fleet.size();
  EXPECT_LE(max_resident, bound);
}

}  // namespace
}  // namespace fm
