#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/profiler.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/strings.h"
#include "common/time.h"

namespace fm {
namespace {

// ---------- Rng ----------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(11);
  std::vector<bool> seen(10, false);
  for (int i = 0; i < 10000; ++i) seen[rng.UniformInt(10)] = true;
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(RngTest, UniformIntRangeInclusive) {
  Rng rng(12);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int v = rng.UniformIntRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMomentsRoughlyCorrect) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.Gaussian(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(RngTest, ExponentialMeanRoughlyCorrect) {
  Rng rng(14);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.Exponential(0.5));
  EXPECT_NEAR(stats.mean(), 2.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(15);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 50000.0, 0.3, 0.02);
}

TEST(RngTest, WeightedIndexProportions) {
  Rng rng(16);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.WeightedIndex(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / 50000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 50000.0, 0.3, 0.02);
  EXPECT_NEAR(counts[3] / 50000.0, 0.6, 0.02);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(21);
  Rng fork = a.Fork();
  // Forked stream should not reproduce the parent's continuation.
  Rng b(21);
  b.Fork();
  EXPECT_EQ(a.NextUint64(), b.NextUint64());
  EXPECT_NE(fork.NextUint64(), a.NextUint64());
}

// ---------- stats ----------

TEST(StatsTest, RunningStatsBasics) {
  RunningStats s;
  for (double x : {2.0, 4.0, 6.0, 8.0}) s.Add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
  EXPECT_DOUBLE_EQ(s.sum(), 20.0);
  EXPECT_DOUBLE_EQ(s.variance(), 5.0);  // population variance
}

TEST(StatsTest, MergeMatchesSequential) {
  RunningStats all;
  RunningStats left;
  RunningStats right;
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.Gaussian(1.0, 3.0);
    all.Add(x);
    (i % 2 == 0 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(StatsTest, EmptyStatsAreZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> v = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 10);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 30);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 50);
  EXPECT_DOUBLE_EQ(Percentile(v, 25), 20);
  EXPECT_DOUBLE_EQ(Percentile(v, 10), 14);
}

TEST(StatsTest, PercentileSingleElement) {
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 90), 7.0);
}

TEST(StatsTest, MeanOfValues) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
}

// ---------- strings ----------

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, TrimWhitespace) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringsTest, JoinWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringsTest, StrFormatBasics) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.2345), "1.23");
}

// ---------- time ----------

TEST(TimeTest, HourSlotBoundaries) {
  EXPECT_EQ(HourSlot(0.0), 0);
  EXPECT_EQ(HourSlot(3599.9), 0);
  EXPECT_EQ(HourSlot(3600.0), 1);
  EXPECT_EQ(HourSlot(12 * 3600.0 + 1800.0), 12);
  EXPECT_EQ(HourSlot(23 * 3600.0 + 3599.0), 23);
}

TEST(TimeTest, HourSlotWrapsAndClamps) {
  EXPECT_EQ(HourSlot(-5.0), 0);
  EXPECT_EQ(HourSlot(kSecondsPerDay + 3600.0), 1);
}

TEST(TimeTest, FormatTimeOfDay) {
  EXPECT_EQ(FormatTimeOfDay(0.0), "00:00:00");
  EXPECT_EQ(FormatTimeOfDay(13 * 3600.0 + 5 * 60.0 + 9.0), "13:05:09");
}

TEST(TimeTest, FormatDuration) {
  EXPECT_EQ(FormatDuration(30.0), "30.0s");
  EXPECT_EQ(FormatDuration(600.0), "10.0min");
  EXPECT_EQ(FormatDuration(7200.0), "2.00h");
}

// ---------- PhaseProfile ----------

TEST(PhaseProfileTest, RecordAccumulatesSecondsAndCalls) {
  PhaseProfile p;
  EXPECT_TRUE(p.empty());
  p.Record("matching.km", 1.5);
  p.Record("matching.km", 0.5);
  p.Record("graph.build", 3.0);
  EXPECT_FALSE(p.empty());
  EXPECT_DOUBLE_EQ(p.TotalSeconds(), 5.0);
  ASSERT_EQ(p.phases().count("matching.km"), 1u);
  EXPECT_DOUBLE_EQ(p.phases().at("matching.km").seconds, 2.0);
  EXPECT_EQ(p.phases().at("matching.km").calls, 2u);
  EXPECT_EQ(p.phases().at("graph.build").calls, 1u);
}

TEST(PhaseProfileTest, MergeAddsPhasewise) {
  PhaseProfile a;
  a.Record("x", 1.0);
  a.Record("y", 2.0);
  PhaseProfile b;
  b.Record("y", 3.0);
  b.Record("z", 4.0);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.phases().at("x").seconds, 1.0);
  EXPECT_DOUBLE_EQ(a.phases().at("y").seconds, 5.0);
  EXPECT_EQ(a.phases().at("y").calls, 2u);
  EXPECT_DOUBLE_EQ(a.phases().at("z").seconds, 4.0);
}

TEST(PhaseProfileTest, RankedSortsByDescendingSeconds) {
  PhaseProfile p;
  p.Record("small", 1.0);
  p.Record("big", 9.0);
  p.Record("mid", 4.0);
  const auto ranked = p.Ranked();
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].first, "big");
  EXPECT_EQ(ranked[1].first, "mid");
  EXPECT_EQ(ranked[2].first, "small");
}

TEST(PhaseProfileTest, ScopedTimerRecordsIntoPhase) {
  PhaseProfile p;
  {
    ScopedPhaseTimer timer(&p, "scoped");
  }
  ASSERT_EQ(p.phases().count("scoped"), 1u);
  EXPECT_EQ(p.phases().at("scoped").calls, 1u);
  EXPECT_GE(p.phases().at("scoped").seconds, 0.0);
  // A null profile is a no-op, not a crash.
  ScopedPhaseTimer noop(nullptr, "ignored");
}

TEST(PhaseProfileTest, JsonIsSortedAndWellFormed) {
  PhaseProfile p;
  EXPECT_EQ(p.ToJson(), "{}");
  p.Record("b.phase", 0.25);
  p.Record("a.phase", 0.5);
  const std::string json = p.ToJson(2);
  // Keys emitted in sorted order regardless of insertion order.
  EXPECT_LT(json.find("a.phase"), json.find("b.phase"));
  EXPECT_NE(json.find("\"seconds\": 0.500000"), std::string::npos);
  EXPECT_NE(json.find("\"calls\": 1"), std::string::npos);
}

}  // namespace
}  // namespace fm
