#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/batching.h"
#include "graph/distance_oracle.h"
#include "tests/test_util.h"

namespace fm {
namespace {

Order MakeOrder(OrderId id, NodeId r, NodeId c, Seconds placed = 0.0,
                Seconds prep = 0.0, int items = 1) {
  Order o;
  o.id = id;
  o.restaurant = r;
  o.customer = c;
  o.placed_at = placed;
  o.prep_time = prep;
  o.items = items;
  return o;
}

class BatchingTest : public ::testing::Test {
 protected:
  BatchingTest()
      : net_(testing::LineNetwork(30, 60.0)),
        oracle_(&net_, OracleBackend::kDijkstra) {
    config_.Validate();
  }

  RoadNetwork net_;
  DistanceOracle oracle_;
  Config config_;
};

TEST_F(BatchingTest, SingletonBatchHasZeroCostWhenPrepCovers) {
  // Free-start vehicle materializes at the restaurant → XDT 0.
  Order o = MakeOrder(0, 5, 9, 0.0, 120.0);
  Batch b = MakeSingletonBatch(oracle_, o, 0.0);
  EXPECT_EQ(b.orders.size(), 1u);
  EXPECT_EQ(b.first_pickup, 5u);
  EXPECT_NEAR(b.cost, 0.0, 1e-9);
}

TEST_F(BatchingTest, EmptyInputYieldsNoBatches) {
  BatchingResult r = BatchOrders(oracle_, config_, {}, 0.0);
  EXPECT_TRUE(r.batches.empty());
  EXPECT_EQ(r.merges, 0);
}

TEST_F(BatchingTest, CoLocatedOrdersAreBatched) {
  // Same restaurant, same direction → merging costs nothing and must occur.
  std::vector<Order> orders = {
      MakeOrder(0, 5, 10),
      MakeOrder(1, 5, 12),
  };
  BatchingResult r = BatchOrders(oracle_, config_, orders, 0.0);
  ASSERT_EQ(r.batches.size(), 1u);
  EXPECT_EQ(r.batches[0].orders.size(), 2u);
  EXPECT_EQ(r.merges, 1);
  EXPECT_EQ(r.batches[0].first_pickup, 5u);
}

TEST_F(BatchingTest, FarApartOrdersStaySeparate) {
  // Opposite ends of a long line: batching would cost far more than η.
  std::vector<Order> orders = {
      MakeOrder(0, 0, 2),
      MakeOrder(1, 28, 26),
  };
  BatchingResult r = BatchOrders(oracle_, config_, orders, 0.0);
  EXPECT_EQ(r.batches.size(), 2u);
  EXPECT_EQ(r.merges, 0);
}

TEST_F(BatchingTest, RespectsMaxOrdersPerVehicle) {
  Config config = config_;
  config.max_orders_per_vehicle = 2;
  config.batching_cutoff = 1e9;  // only the capacity can stop merging
  std::vector<Order> orders = {
      MakeOrder(0, 5, 6),
      MakeOrder(1, 5, 6),
      MakeOrder(2, 5, 6),
      MakeOrder(3, 5, 6),
  };
  BatchingResult r = BatchOrders(oracle_, config, orders, 0.0);
  for (const Batch& b : r.batches) {
    EXPECT_LE(b.orders.size(), 2u);
  }
  // 4 identical orders with MAXO=2 must form exactly two pairs.
  EXPECT_EQ(r.batches.size(), 2u);
}

TEST_F(BatchingTest, RespectsMaxItems) {
  Config config = config_;
  config.max_items_per_vehicle = 5;
  std::vector<Order> orders = {
      MakeOrder(0, 5, 6, 0, 0, /*items=*/3),
      MakeOrder(1, 5, 6, 0, 0, /*items=*/3),
  };
  BatchingResult r = BatchOrders(oracle_, config, orders, 0.0);
  EXPECT_EQ(r.batches.size(), 2u);  // 3 + 3 > 5 → cannot merge
}

TEST_F(BatchingTest, EtaZeroDisablesBatchingOfCostlyPairs) {
  Config config = config_;
  config.batching_cutoff = 0.0;
  // Orders whose pairing has strictly positive cost.
  std::vector<Order> orders = {
      MakeOrder(0, 5, 3),
      MakeOrder(1, 7, 9),
  };
  BatchingResult zero = BatchOrders(oracle_, config, orders, 0.0);
  // Zero-cost merges are still allowed (AvgCost stays 0), but this pair
  // costs > 0 and would push AvgCost above 0 — the run may stop before or
  // after one merge depending on the merge's cost; with these orders the
  // merged batch has positive cost, so after merging AvgCost > 0. The
  // stopping rule checks *before* merging, so exactly one merge can happen
  // only if the pre-merge AvgCost (= 0) is ≤ η. Verify the documented
  // behaviour: batches remain within quality: every singleton had cost 0.
  for (const Batch& b : zero.batches) {
    EXPECT_LE(b.orders.size(), 3u);
  }
}

TEST_F(BatchingTest, AvgCostMonotoneUnderMerging) {
  // Theorem 2: AvgCost never decreases across iterations. We verify the
  // endpoint inequality: final AvgCost >= initial AvgCost (0 for free-start
  // singletons on a constant-weight network).
  Rng rng(9);
  std::vector<Order> orders;
  for (int i = 0; i < 12; ++i) {
    orders.push_back(MakeOrder(i, static_cast<NodeId>(rng.UniformInt(30)),
                               static_cast<NodeId>(rng.UniformInt(30))));
  }
  Config config = config_;
  config.batching_cutoff = 300.0;
  BatchingResult r = BatchOrders(oracle_, config, orders, 0.0);
  EXPECT_GE(r.final_avg_cost, -1e-9);
  std::size_t total_orders = 0;
  for (const Batch& b : r.batches) total_orders += b.orders.size();
  EXPECT_EQ(total_orders, orders.size());  // partition property
}

TEST_F(BatchingTest, MergeWeightsAreNonNegativeOnStaticNetwork) {
  // Theorem 2's key lemma: w_ij >= 0. On a constant-weight network (FIFO
  // holds trivially) every pairwise merge weight must be nonnegative:
  // Cost(merged) >= Cost(a) + Cost(b).
  Rng rng(10);
  for (int trial = 0; trial < 30; ++trial) {
    Order a = MakeOrder(0, static_cast<NodeId>(rng.UniformInt(30)),
                        static_cast<NodeId>(rng.UniformInt(30)), 0.0,
                        rng.UniformRange(0, 600));
    Order b = MakeOrder(1, static_cast<NodeId>(rng.UniformInt(30)),
                        static_cast<NodeId>(rng.UniformInt(30)), 0.0,
                        rng.UniformRange(0, 600));
    Batch ba = MakeSingletonBatch(oracle_, a, 0.0);
    Batch bb = MakeSingletonBatch(oracle_, b, 0.0);
    Batch merged = MakeBatchFromOrders(oracle_, {a, b}, 0.0);
    EXPECT_GE(merged.cost - ba.cost - bb.cost, -1e-6)
        << "trial " << trial;
  }
}

TEST_F(BatchingTest, BatchPartitionIsDisjointAndComplete) {
  Rng rng(11);
  std::vector<Order> orders;
  for (int i = 0; i < 20; ++i) {
    orders.push_back(MakeOrder(i, static_cast<NodeId>(rng.UniformInt(30)),
                               static_cast<NodeId>(rng.UniformInt(30))));
  }
  BatchingResult r = BatchOrders(oracle_, config_, orders, 0.0);
  std::vector<bool> seen(orders.size(), false);
  for (const Batch& b : r.batches) {
    EXPECT_LE(static_cast<int>(b.orders.size()), config_.max_orders_per_vehicle);
    EXPECT_LE(b.TotalItemCount(), config_.max_items_per_vehicle);
    for (const Order& o : b.orders) {
      EXPECT_FALSE(seen[o.id]) << "order appears in two batches";
      seen[o.id] = true;
    }
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST_F(BatchingTest, FirstPickupMatchesPlanFront) {
  Rng rng(12);
  std::vector<Order> orders;
  for (int i = 0; i < 10; ++i) {
    orders.push_back(MakeOrder(i, static_cast<NodeId>(rng.UniformInt(30)),
                               static_cast<NodeId>(rng.UniformInt(30))));
  }
  BatchingResult r = BatchOrders(oracle_, config_, orders, 0.0);
  for (const Batch& b : r.batches) {
    ASSERT_FALSE(b.plan.stops.empty());
    EXPECT_EQ(b.plan.stops.front().type, StopType::kPickup);
    EXPECT_EQ(b.plan.stops.front().node, b.first_pickup);
  }
}

// The parallel order-graph build must be a pure speed change: every field
// of the BatchingResult — batch composition, costs, plans, merge count —
// has to be bit-identical to the serial run for any thread count.
TEST_F(BatchingTest, BitIdenticalAcrossThreadCounts) {
  Rng rng(14);
  std::vector<Order> orders;
  for (int i = 0; i < 24; ++i) {
    orders.push_back(MakeOrder(i, static_cast<NodeId>(rng.UniformInt(30)),
                               static_cast<NodeId>(rng.UniformInt(30)), 0.0,
                               rng.UniformRange(0, 300)));
  }
  Config config = config_;
  config.batching_cutoff = 240.0;  // enough headroom to force many merges
  const BatchingResult serial = BatchOrders(oracle_, config, orders, 0.0);
  EXPECT_GT(serial.merges, 0);  // the interesting path must be exercised

  for (int threads : {2, 3, 8}) {
    ThreadPool pool(threads);
    PhaseProfile profile;
    const BatchingResult parallel =
        BatchOrders(oracle_, config, orders, 0.0, &pool, &profile);

    EXPECT_EQ(parallel.merges, serial.merges) << threads << " threads";
    EXPECT_EQ(parallel.final_avg_cost, serial.final_avg_cost);
    ASSERT_EQ(parallel.batches.size(), serial.batches.size());
    for (std::size_t b = 0; b < serial.batches.size(); ++b) {
      const Batch& s = serial.batches[b];
      const Batch& p = parallel.batches[b];
      EXPECT_EQ(p.cost, s.cost) << "batch " << b;  // exact, not NEAR
      EXPECT_EQ(p.first_pickup, s.first_pickup);
      ASSERT_EQ(p.orders.size(), s.orders.size());
      for (std::size_t o = 0; o < s.orders.size(); ++o) {
        EXPECT_EQ(p.orders[o].id, s.orders[o].id);
      }
      ASSERT_EQ(p.plan.stops.size(), s.plan.stops.size());
      for (std::size_t st = 0; st < s.plan.stops.size(); ++st) {
        EXPECT_EQ(p.plan.stops[st].node, s.plan.stops[st].node);
        EXPECT_EQ(p.plan.stops[st].order, s.plan.stops[st].order);
        EXPECT_EQ(p.plan.stops[st].type, s.plan.stops[st].type);
      }
    }
    // The profiler saw all three sub-phases of the instrumented run.
    EXPECT_EQ(profile.phases().count("batching.singletons"), 1u);
    EXPECT_EQ(profile.phases().count("batching.order_graph"), 1u);
    EXPECT_EQ(profile.phases().count("batching.merge_loop"), 1u);
  }
}

TEST_F(BatchingTest, HigherEtaBatchesMore) {
  Rng rng(13);
  std::vector<Order> orders;
  for (int i = 0; i < 16; ++i) {
    orders.push_back(MakeOrder(i, static_cast<NodeId>(rng.UniformInt(30)),
                               static_cast<NodeId>(rng.UniformInt(30))));
  }
  Config low = config_;
  low.batching_cutoff = 10.0;
  Config high = config_;
  high.batching_cutoff = 600.0;
  const auto r_low = BatchOrders(oracle_, low, orders, 0.0);
  const auto r_high = BatchOrders(oracle_, high, orders, 0.0);
  EXPECT_GE(r_low.batches.size(), r_high.batches.size());
}

}  // namespace
}  // namespace fm
