#include <algorithm>
#include <limits>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/spatial_index.h"
#include "tests/test_util.h"

namespace fm {
namespace {

NodeId BruteForceNearest(const RoadNetwork& net, const LatLon& q) {
  NodeId best = kInvalidNode;
  Meters best_d = std::numeric_limits<Meters>::max();
  for (NodeId u = 0; u < net.num_nodes(); ++u) {
    const Meters d = Haversine(q, net.node_position(u));
    if (d < best_d) {
      best_d = d;
      best = u;
    }
  }
  return best;
}

TEST(SpatialIndexTest, NearestOnLine) {
  RoadNetwork net = testing::LineNetwork(10);
  SpatialIndex index(&net);
  // Query right on top of node 3.
  const LatLon p = net.node_position(3);
  EXPECT_EQ(index.NearestNode(p), 3u);
}

TEST(SpatialIndexTest, NearestMatchesBruteForceRandom) {
  Rng rng(61);
  RoadNetwork net = testing::RandomConnectedNetwork(rng, 120, 0);
  SpatialIndex index(&net, 16);
  Rng qrng(62);
  for (int trial = 0; trial < 200; ++trial) {
    LatLon q{qrng.UniformRange(12.88, 13.12), qrng.UniformRange(77.48, 77.72)};
    const NodeId got = index.NearestNode(q);
    const NodeId expected = BruteForceNearest(net, q);
    // Equal distance ties can pick either node.
    EXPECT_NEAR(Haversine(q, net.node_position(got)),
                Haversine(q, net.node_position(expected)), 1e-6);
  }
}

TEST(SpatialIndexTest, QueriesOutsideBoundingBox) {
  RoadNetwork net = testing::LineNetwork(5);
  SpatialIndex index(&net);
  // Far north-east of every node: nearest must be the last node.
  const NodeId got = index.NearestNode({5.0, 10.0});
  EXPECT_EQ(got, BruteForceNearest(net, {5.0, 10.0}));
}

TEST(SpatialIndexTest, RadiusQueryFindsAllAndOnly) {
  Rng rng(63);
  RoadNetwork net = testing::RandomConnectedNetwork(rng, 150, 0);
  SpatialIndex index(&net, 12);
  const LatLon q{13.0, 77.6};
  const Meters radius = 4000.0;
  auto got = index.NodesWithinRadius(q, radius);
  std::sort(got.begin(), got.end());
  std::vector<NodeId> expected;
  for (NodeId u = 0; u < net.num_nodes(); ++u) {
    if (Haversine(q, net.node_position(u)) <= radius) expected.push_back(u);
  }
  EXPECT_EQ(got, expected);
}

TEST(SpatialIndexTest, SingleNodeNetwork) {
  RoadNetwork::Builder builder;
  builder.AddNode({12.0, 77.0});
  RoadNetwork net = builder.Build();
  SpatialIndex index(&net);
  EXPECT_EQ(index.NearestNode({50.0, 50.0}), 0u);
}

}  // namespace
}  // namespace fm
